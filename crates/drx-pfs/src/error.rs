//! Error type for the parallel file system simulator.

use std::fmt;

/// Errors surfaced by the PFS layer.
#[derive(Debug)]
pub enum PfsError {
    /// Real I/O failure from a disk backend.
    Io(std::io::Error),
    /// A read touched bytes beyond the logical end of file.
    OutOfRange { offset: u64, len: u64, file_len: u64 },
    /// The file name is unknown.
    NoSuchFile(String),
    /// The file already exists (on exclusive create).
    AlreadyExists(String),
    /// Invalid configuration (zero servers, zero stripe size, …).
    Config(String),
    /// A fault injected by a test plan fired.
    Injected { server: usize, detail: String },
    /// The I/O server holding part of the range is down. Not transient:
    /// callers surface it (degraded mode) rather than spin on retries.
    Unavailable { server: usize },
    /// A read or write moved fewer bytes than requested (transient — the
    /// retry policy re-issues the full request).
    ShortIo { server: usize, expected: usize, got: usize },
    /// A write persisted only a prefix before the server failed — the
    /// simulated crash point. Not transient: retrying cannot un-tear it.
    Torn { server: usize, written: usize },
}

impl fmt::Display for PfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfsError::Io(e) => write!(f, "I/O error: {e}"),
            PfsError::OutOfRange { offset, len, file_len } => {
                write!(f, "read [{offset}, {offset}+{len}) beyond EOF {file_len}")
            }
            PfsError::NoSuchFile(name) => write!(f, "no such file: {name}"),
            PfsError::AlreadyExists(name) => write!(f, "file exists: {name}"),
            PfsError::Config(why) => write!(f, "bad PFS configuration: {why}"),
            PfsError::Injected { server, detail } => {
                write!(f, "injected fault on server {server}: {detail}")
            }
            PfsError::Unavailable { server } => {
                write!(f, "I/O server {server} is unavailable")
            }
            PfsError::ShortIo { server, expected, got } => {
                write!(f, "short I/O on server {server}: {got} of {expected} bytes")
            }
            PfsError::Torn { server, written } => {
                write!(f, "torn write on server {server}: only {written} bytes persisted")
            }
        }
    }
}

impl PfsError {
    /// Whether a retry can plausibly succeed: `EINTR` and short transfers
    /// are re-issuable; everything else (bad config, down server, torn
    /// write, out-of-range) is surfaced to the caller immediately.
    pub fn is_transient(&self) -> bool {
        match self {
            PfsError::Io(e) => e.kind() == std::io::ErrorKind::Interrupted,
            PfsError::ShortIo { .. } => true,
            _ => false,
        }
    }
}

impl std::error::Error for PfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PfsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PfsError {
    fn from(e: std::io::Error) -> Self {
        PfsError::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, PfsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PfsError::NoSuchFile("x".into()).to_string().contains("x"));
        assert!(PfsError::OutOfRange { offset: 5, len: 10, file_len: 8 }
            .to_string()
            .contains("EOF 8"));
        assert!(PfsError::Injected { server: 3, detail: "boom".into() }
            .to_string()
            .contains("server 3"));
        assert!(PfsError::Unavailable { server: 1 }.to_string().contains("unavailable"));
        assert!(PfsError::ShortIo { server: 0, expected: 8, got: 4 }
            .to_string()
            .contains("4 of 8"));
        assert!(PfsError::Torn { server: 2, written: 5 }.to_string().contains("torn"));
    }

    #[test]
    fn transience_classification() {
        let eintr = std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR");
        assert!(PfsError::Io(eintr).is_transient());
        assert!(PfsError::ShortIo { server: 0, expected: 8, got: 4 }.is_transient());
        let other = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no");
        assert!(!PfsError::Io(other).is_transient());
        assert!(!PfsError::Unavailable { server: 0 }.is_transient());
        assert!(!PfsError::Torn { server: 0, written: 1 }.is_transient());
        assert!(!PfsError::NoSuchFile("x".into()).is_transient());
    }
}
