//! Error type for the parallel file system simulator.

use std::fmt;

/// Errors surfaced by the PFS layer.
#[derive(Debug)]
pub enum PfsError {
    /// Real I/O failure from a disk backend.
    Io(std::io::Error),
    /// A read touched bytes beyond the logical end of file.
    OutOfRange { offset: u64, len: u64, file_len: u64 },
    /// The file name is unknown.
    NoSuchFile(String),
    /// The file already exists (on exclusive create).
    AlreadyExists(String),
    /// Invalid configuration (zero servers, zero stripe size, …).
    Config(String),
    /// A fault injected by a test plan fired.
    Injected { server: usize, detail: String },
}

impl fmt::Display for PfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfsError::Io(e) => write!(f, "I/O error: {e}"),
            PfsError::OutOfRange { offset, len, file_len } => {
                write!(f, "read [{offset}, {offset}+{len}) beyond EOF {file_len}")
            }
            PfsError::NoSuchFile(name) => write!(f, "no such file: {name}"),
            PfsError::AlreadyExists(name) => write!(f, "file exists: {name}"),
            PfsError::Config(why) => write!(f, "bad PFS configuration: {why}"),
            PfsError::Injected { server, detail } => {
                write!(f, "injected fault on server {server}: {detail}")
            }
        }
    }
}

impl std::error::Error for PfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PfsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PfsError {
    fn from(e: std::io::Error) -> Self {
        PfsError::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, PfsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PfsError::NoSuchFile("x".into()).to_string().contains("x"));
        assert!(PfsError::OutOfRange { offset: 5, len: 10, file_len: 8 }
            .to_string()
            .contains("EOF 8"));
        assert!(PfsError::Injected { server: 3, detail: "boom".into() }
            .to_string()
            .contains("server 3"));
    }
}
