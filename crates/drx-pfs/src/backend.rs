//! Storage backends for the simulated I/O servers.
//!
//! A backend stores the *local* byte stream of one file on one server (the
//! concatenation of the stripes that server owns). Reads beyond the locally
//! written length yield zeros — holes are legal at the local level; logical
//! end-of-file policing happens in [`crate::file::PfsFile`].

use crate::error::Result;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::path::Path;

/// Byte-addressed storage for one (file, server) pair.
///
/// (`is_empty` is deliberately absent: backends are byte streams addressed
/// by the striping layer, which never asks about emptiness.)
#[allow(clippy::len_without_is_empty)]
pub trait Storage: Send + Sync {
    /// Read `buf.len()` bytes at `offset`; bytes beyond the written length
    /// read as zero.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;
    /// Write `data` at `offset`, extending the local length as needed.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;
    /// Locally written length in bytes.
    fn len(&self) -> Result<u64>;
    /// Truncate or zero-extend to `len` bytes.
    fn set_len(&self, len: u64) -> Result<()>;
}

/// In-memory backend — the default for tests and benchmarks (deterministic,
/// no disk noise).
#[derive(Default)]
pub struct MemBackend {
    // lock-class: data => PfsBacking
    data: Mutex<Vec<u8>>,
}

impl MemBackend {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let data = self.data.lock();
        let off = offset as usize;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = data.get(off + i).copied().unwrap_or(0);
        }
        Ok(())
    }

    fn write_at(&self, offset: u64, bytes: &[u8]) -> Result<()> {
        let mut data = self.data.lock();
        let end = offset as usize + bytes.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.data.lock().len() as u64)
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.data.lock().resize(len as usize, 0);
        Ok(())
    }
}

/// Real-file backend: stores the server-local stream in one file on the host
/// file system (used when the caller wants actual disk I/O).
pub struct FileBackend {
    file: File,
}

impl FileBackend {
    /// Open (creating if needed) the backing file at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        Ok(FileBackend { file })
    }
}

impl Storage for FileBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        // Zero-fill semantics: read what exists, zero the rest.
        let flen = self.file.metadata()?.len();
        if offset >= flen {
            buf.fill(0);
            return Ok(());
        }
        let avail = ((flen - offset) as usize).min(buf.len());
        self.file.read_exact_at(&mut buf[..avail], offset)?;
        buf[avail..].fill(0);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, offset)?;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn Storage) {
        // Fresh backend reads as zeros.
        let mut buf = [7u8; 4];
        backend.read_at(100, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
        // Write then read back.
        backend.write_at(10, b"hello").unwrap();
        let mut buf = [0u8; 5];
        backend.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(backend.len().unwrap(), 15);
        // Straddling read: partly written, partly hole.
        let mut buf = [9u8; 10];
        backend.read_at(12, &mut buf).unwrap();
        assert_eq!(&buf[..3], b"llo");
        assert_eq!(&buf[3..], &[0; 7]);
        // Truncate.
        backend.set_len(12).unwrap();
        assert_eq!(backend.len().unwrap(), 12);
        let mut buf = [9u8; 3];
        backend.read_at(12, &mut buf).unwrap();
        assert_eq!(buf, [0; 3]);
        // Zero-extend.
        backend.set_len(20).unwrap();
        assert_eq!(backend.len().unwrap(), 20);
    }

    #[test]
    fn mem_backend_semantics() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn file_backend_semantics() {
        let dir = std::env::temp_dir().join(format!("drx-pfs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("backend-test.bin");
        let _ = std::fs::remove_file(&path);
        exercise(&FileBackend::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mem_backend_overwrite() {
        let b = MemBackend::new();
        b.write_at(0, b"aaaa").unwrap();
        b.write_at(2, b"bb").unwrap();
        let mut buf = [0u8; 4];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"aabb");
    }
}
