//! Storage backends for the simulated I/O servers.
//!
//! A backend stores the *local* byte stream of one file on one server (the
//! concatenation of the stripes that server owns). Reads beyond the locally
//! written length yield zeros — holes are legal at the local level; logical
//! end-of-file policing happens in [`crate::file::PfsFile`].

use crate::error::{PfsError, Result};
use drx_fault::{CrashFile, Decision, Injector, Op};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::Arc;

/// Byte-addressed storage for one (file, server) pair.
///
/// (`is_empty` is deliberately absent: backends are byte streams addressed
/// by the striping layer, which never asks about emptiness.)
#[allow(clippy::len_without_is_empty)]
pub trait Storage: Send + Sync {
    /// Read `buf.len()` bytes at `offset`; bytes beyond the written length
    /// read as zero.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;
    /// Write `data` at `offset`, extending the local length as needed.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;
    /// Locally written length in bytes.
    fn len(&self) -> Result<u64>;
    /// Truncate or zero-extend to `len` bytes.
    fn set_len(&self, len: u64) -> Result<()>;
    /// Force written bytes to durable storage (fsync). Volatile backends
    /// treat this as a durability barrier in their crash model; for
    /// [`MemBackend`] (no crash model) it is a no-op.
    fn sync(&self) -> Result<()>;
}

/// In-memory backend — the default for tests and benchmarks (deterministic,
/// no disk noise).
#[derive(Default)]
pub struct MemBackend {
    // lock-class: data => PfsBacking
    data: Mutex<Vec<u8>>,
}

impl MemBackend {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let data = self.data.lock();
        let off = offset as usize;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = data.get(off + i).copied().unwrap_or(0);
        }
        Ok(())
    }

    fn write_at(&self, offset: u64, bytes: &[u8]) -> Result<()> {
        let mut data = self.data.lock();
        let end = offset as usize + bytes.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.data.lock().len() as u64)
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.data.lock().resize(len as usize, 0);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// Real-file backend: stores the server-local stream in one file on the host
/// file system (used when the caller wants actual disk I/O).
pub struct FileBackend {
    file: File,
}

impl FileBackend {
    /// Open (creating if needed) the backing file at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        Ok(FileBackend { file })
    }
}

impl Storage for FileBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        // Zero-fill semantics: read what exists, zero the rest. The loop
        // absorbs `EINTR` and short reads itself instead of surfacing them
        // — positioned reads may legally return early.
        let flen = self.file.metadata()?.len();
        if offset >= flen {
            buf.fill(0);
            return Ok(());
        }
        let avail = ((flen - offset) as usize).min(buf.len());
        let mut done = 0usize;
        while done < avail {
            match self.file.read_at(&mut buf[done..avail], offset + done as u64) {
                Ok(0) => break, // concurrent truncation: the rest is a hole
                Ok(n) => done += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        buf[done..].fill(0);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        // Same contract as reads: `EINTR` and partial writes are retried
        // here, not surfaced to the striping layer.
        let mut done = 0usize;
        while done < data.len() {
            match self.file.write_at(&data[done..], offset + done as u64) {
                Ok(0) => {
                    return Err(PfsError::Io(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "write_at returned 0 bytes",
                    )))
                }
                Ok(n) => done += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }
}

/// Crash-model backend: the server-local stream lives in a
/// [`drx_fault::CrashFile`] with an explicit volatile/durable split.
/// `sync` is the durability barrier; [`drx_fault::CrashRegistry::crash_all`]
/// simulates power loss, and a file system rebuilt over the same registry
/// sees exactly what was synced.
pub struct CrashBackend {
    file: Arc<CrashFile>,
}

impl CrashBackend {
    pub fn new(file: Arc<CrashFile>) -> CrashBackend {
        CrashBackend { file }
    }
}

impl Storage for CrashBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.file.read_at(offset, buf);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.file.write_at(offset, data);
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.len())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.file.set_len(len);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync();
        Ok(())
    }
}

/// Fault-injecting decorator: consults a shared [`drx_fault::Injector`]
/// before every operation and maps its decisions onto typed [`PfsError`]s.
/// Wraps any inner backend; composed over [`CrashBackend`] the injected
/// torn writes leave exactly the bytes a real crash would.
pub struct FaultyBackend {
    inner: Box<dyn Storage>,
    injector: Arc<Injector>,
    /// Fault domain: the owning server's id.
    domain: usize,
}

impl FaultyBackend {
    pub fn new(inner: Box<dyn Storage>, injector: Arc<Injector>, domain: usize) -> FaultyBackend {
        FaultyBackend { inner, injector, domain }
    }

    fn interrupted(&self) -> PfsError {
        PfsError::Io(std::io::Error::new(std::io::ErrorKind::Interrupted, "injected EINTR"))
    }
}

impl Storage for FaultyBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        match self.injector.decide(self.domain, Op::Read, buf.len()) {
            Decision::Pass | Decision::TornWrite { .. } => self.inner.read_at(offset, buf),
            Decision::Interrupt => Err(self.interrupted()),
            Decision::Unavailable => Err(PfsError::Unavailable { server: self.domain }),
            Decision::ShortRead { keep } => {
                let keep = keep.min(buf.len());
                self.inner.read_at(offset, &mut buf[..keep])?;
                Err(PfsError::ShortIo { server: self.domain, expected: buf.len(), got: keep })
            }
            Decision::Delay { micros } => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                self.inner.read_at(offset, buf)
            }
        }
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        match self.injector.decide(self.domain, Op::Write, data.len()) {
            Decision::Pass | Decision::ShortRead { .. } => self.inner.write_at(offset, data),
            Decision::Interrupt => Err(self.interrupted()),
            Decision::Unavailable => Err(PfsError::Unavailable { server: self.domain }),
            Decision::TornWrite { keep } => {
                let keep = keep.min(data.len());
                self.inner.write_at(offset, &data[..keep])?;
                Err(PfsError::Torn { server: self.domain, written: keep })
            }
            Decision::Delay { micros } => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                self.inner.write_at(offset, data)
            }
        }
    }

    fn len(&self) -> Result<u64> {
        // Length queries are metadata lookups, not scripted operations.
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        match self.injector.decide(self.domain, Op::SetLen, 0) {
            Decision::Interrupt => Err(self.interrupted()),
            Decision::Unavailable => Err(PfsError::Unavailable { server: self.domain }),
            Decision::Delay { micros } => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                self.inner.set_len(len)
            }
            _ => self.inner.set_len(len),
        }
    }

    fn sync(&self) -> Result<()> {
        match self.injector.decide(self.domain, Op::Sync, 0) {
            Decision::Interrupt => Err(self.interrupted()),
            Decision::Unavailable => Err(PfsError::Unavailable { server: self.domain }),
            Decision::Delay { micros } => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                self.inner.sync()
            }
            _ => self.inner.sync(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn Storage) {
        // Fresh backend reads as zeros.
        let mut buf = [7u8; 4];
        backend.read_at(100, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
        // Write then read back.
        backend.write_at(10, b"hello").unwrap();
        let mut buf = [0u8; 5];
        backend.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(backend.len().unwrap(), 15);
        // Straddling read: partly written, partly hole.
        let mut buf = [9u8; 10];
        backend.read_at(12, &mut buf).unwrap();
        assert_eq!(&buf[..3], b"llo");
        assert_eq!(&buf[3..], &[0; 7]);
        // Truncate.
        backend.set_len(12).unwrap();
        assert_eq!(backend.len().unwrap(), 12);
        let mut buf = [9u8; 3];
        backend.read_at(12, &mut buf).unwrap();
        assert_eq!(buf, [0; 3]);
        // Zero-extend.
        backend.set_len(20).unwrap();
        assert_eq!(backend.len().unwrap(), 20);
    }

    #[test]
    fn mem_backend_semantics() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn file_backend_semantics() {
        let dir = std::env::temp_dir().join(format!("drx-pfs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("backend-test.bin");
        let _ = std::fs::remove_file(&path);
        exercise(&FileBackend::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mem_backend_overwrite() {
        let b = MemBackend::new();
        b.write_at(0, b"aaaa").unwrap();
        b.write_at(2, b"bb").unwrap();
        let mut buf = [0u8; 4];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"aabb");
    }

    #[test]
    fn crash_backend_semantics() {
        exercise(&CrashBackend::new(Arc::new(CrashFile::default())));
    }

    #[test]
    fn crash_backend_loses_unsynced_writes() {
        let file = Arc::new(CrashFile::default());
        let b = CrashBackend::new(Arc::clone(&file));
        b.write_at(0, b"durable!").unwrap();
        b.sync().unwrap();
        b.write_at(0, b"volatile").unwrap();
        file.crash();
        let mut buf = [0u8; 8];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"durable!");
    }

    #[test]
    fn faulty_backend_inert_passes_through() {
        let inj = Arc::new(Injector::inert());
        exercise(&FaultyBackend::new(Box::new(MemBackend::new()), inj, 0));
    }

    #[test]
    fn faulty_backend_maps_decisions_to_typed_errors() {
        use drx_fault::{Event, FaultKind, Script};
        // Script: op 0 short read, op 1 EINTR, op 2 torn write, op 3 down.
        let script = Script {
            seed: 0,
            events: vec![
                Event { at_op: 0, domain: None, op: Some(Op::Read), kind: FaultKind::ShortRead },
                Event { at_op: 1, domain: None, op: Some(Op::Read), kind: FaultKind::Interrupted },
                Event { at_op: 2, domain: None, op: Some(Op::Write), kind: FaultKind::TornWrite },
                Event { at_op: 3, domain: Some(0), op: None, kind: FaultKind::Down },
            ],
        };
        let inj = Arc::new(Injector::new(script));
        let b = FaultyBackend::new(Box::new(MemBackend::new()), inj, 0);
        let mut buf = [0u8; 8];
        assert!(matches!(
            b.read_at(0, &mut buf),
            Err(PfsError::ShortIo { server: 0, expected: 8, got: 4 })
        ));
        match b.read_at(0, &mut buf) {
            Err(PfsError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::Interrupted),
            other => panic!("expected injected EINTR, got {other:?}"),
        }
        assert!(matches!(
            b.write_at(0, b"abcdefgh"),
            Err(PfsError::Torn { server: 0, written: 4 })
        ));
        // Fourth op arms Down: everything afterwards is Unavailable.
        assert!(matches!(b.read_at(0, &mut buf), Err(PfsError::Unavailable { server: 0 })));
        assert!(matches!(b.sync(), Err(PfsError::Unavailable { server: 0 })));
    }

    #[test]
    fn faulty_backend_torn_write_persists_prefix_only() {
        use drx_fault::{Event, FaultKind, Script};
        let script = Script {
            seed: 0,
            events: vec![Event {
                at_op: 0,
                domain: None,
                op: Some(Op::Write),
                kind: FaultKind::TornWrite,
            }],
        };
        let inj = Arc::new(Injector::new(script));
        let b = FaultyBackend::new(Box::new(MemBackend::new()), inj, 0);
        assert!(matches!(b.write_at(0, b"abcdefgh"), Err(PfsError::Torn { written: 4, .. })));
        let mut buf = [0u8; 8];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcd\0\0\0\0");
    }
}
