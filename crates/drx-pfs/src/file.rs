//! The file-system facade: named logical files striped across the simulated
//! I/O servers.

use crate::error::{PfsError, Result};
use crate::par::{self, Job, Op};
use crate::retry::RetryPolicy;
use crate::server::{Backing, FaultPlan, IoServer};
use crate::stats::{CostModel, PfsStats};
use crate::striping::StripeMap;
use drx_fault::Injector;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of a simulated parallel file system.
#[derive(Clone)]
pub struct PfsConfig {
    /// Number of I/O servers data is striped over.
    pub n_servers: usize,
    /// Stripe size in bytes.
    pub stripe_size: u64,
    /// Per-server cost model for the simulated clock.
    pub cost: CostModel,
    /// Memory, real-disk, or crash-model backing.
    pub backing: Backing,
    /// Retry schedule for transient per-fragment storage errors.
    pub retry: RetryPolicy,
    /// Scripted fault injector wrapped around every server's storage
    /// (`None` = no injection).
    pub injector: Option<Arc<Injector>>,
    /// Client-side I/O worker threads for vectored requests. `1` issues
    /// fragments sequentially; larger values overlap requests to distinct
    /// servers. Forced to `1` whenever a fault injector is armed so
    /// scripted replays keep a deterministic request order.
    pub io_workers: usize,
    /// Emulated wall-clock service latency per server request (`None` =
    /// memory-speed). Each server services its requests serially behind the
    /// latency, so concurrent requests only overlap across *distinct*
    /// servers — the remote-I/O-server regime the paper assumes.
    pub request_latency: Option<std::time::Duration>,
}

impl std::fmt::Debug for PfsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PfsConfig")
            .field("n_servers", &self.n_servers)
            .field("stripe_size", &self.stripe_size)
            .field("cost", &self.cost)
            .field("backing", &self.backing)
            .field("retry", &self.retry)
            .field("injector", &self.injector.as_ref().map(|_| "Injector"))
            .field("io_workers", &self.io_workers)
            .field("request_latency", &self.request_latency)
            .finish()
    }
}

impl Default for PfsConfig {
    fn default() -> Self {
        PfsConfig {
            n_servers: 4,
            stripe_size: 64 * 1024,
            cost: CostModel::default(),
            backing: Backing::Memory,
            retry: RetryPolicy::default(),
            injector: None,
            io_workers: 1,
            request_latency: None,
        }
    }
}

struct PfsInner {
    servers: Vec<Arc<IoServer>>,
    map: StripeMap,
    retry: RetryPolicy,
    /// Effective worker count for vectored requests (already clamped to 1
    /// when a fault injector is armed).
    io_workers: usize,
    /// Logical lengths of the named files.
    // lock-class: inner.meta => PfsMeta
    meta: Mutex<HashMap<String, u64>>,
}

/// A simulated striped parallel file system (PVFS2 stand-in).
///
/// `Pfs` is cheaply cloneable; clones share servers, files and statistics,
/// so every rank of a parallel program can hold one.
#[derive(Clone)]
pub struct Pfs {
    inner: Arc<PfsInner>,
}

impl Pfs {
    pub fn new(config: PfsConfig) -> Result<Self> {
        let map = StripeMap::new(config.n_servers, config.stripe_size)?;
        let servers = (0..config.n_servers)
            .map(|id| {
                IoServer::with_injector(
                    id,
                    config.backing.clone(),
                    config.cost,
                    config.injector.clone(),
                    config.request_latency,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        // Fault scripts replay against a deterministic global request
        // order; a concurrent pool would reorder the ops they count.
        let io_workers = if config.injector.is_some() { 1 } else { config.io_workers.max(1) };
        Ok(Pfs {
            inner: Arc::new(PfsInner {
                servers,
                map,
                retry: config.retry,
                io_workers,
                meta: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// Memory-backed file system with the default cost model.
    pub fn memory(n_servers: usize, stripe_size: u64) -> Result<Self> {
        Pfs::new(PfsConfig { n_servers, stripe_size, ..PfsConfig::default() })
    }

    pub fn stripe_size(&self) -> u64 {
        self.inner.map.stripe_size()
    }

    pub fn n_servers(&self) -> usize {
        self.inner.map.n_servers()
    }

    /// Effective client-side I/O worker count for vectored requests.
    pub fn io_workers(&self) -> usize {
        self.inner.io_workers
    }

    /// Create a new empty file; errors if it already exists.
    pub fn create(&self, name: &str) -> Result<PfsFile> {
        {
            let mut meta = self.inner.meta.lock();
            if meta.contains_key(name) {
                return Err(PfsError::AlreadyExists(name.to_string()));
            }
            meta.insert(name.to_string(), 0);
        }
        for s in &self.inner.servers {
            s.ensure_file(name)?;
        }
        Ok(PfsFile { inner: Arc::clone(&self.inner), name: name.to_string() })
    }

    /// Open an existing file.
    pub fn open(&self, name: &str) -> Result<PfsFile> {
        if !self.inner.meta.lock().contains_key(name) {
            return Err(PfsError::NoSuchFile(name.to_string()));
        }
        Ok(PfsFile { inner: Arc::clone(&self.inner), name: name.to_string() })
    }

    /// Open, creating if absent.
    pub fn open_or_create(&self, name: &str) -> Result<PfsFile> {
        match self.create(name) {
            Ok(f) => Ok(f),
            Err(PfsError::AlreadyExists(_)) => self.open(name),
            Err(e) => Err(e),
        }
    }

    pub fn exists(&self, name: &str) -> bool {
        self.inner.meta.lock().contains_key(name)
    }

    /// Delete a file and its server-local streams.
    pub fn delete(&self, name: &str) -> Result<()> {
        if self.inner.meta.lock().remove(name).is_none() {
            return Err(PfsError::NoSuchFile(name.to_string()));
        }
        for s in &self.inner.servers {
            s.remove_file(name)?;
        }
        Ok(())
    }

    /// Snapshot of all server counters.
    pub fn stats(&self) -> PfsStats {
        PfsStats { per_server: self.inner.servers.iter().map(|s| s.stats()).collect() }
    }

    /// Reset all counters.
    pub fn reset_stats(&self) {
        for s in &self.inner.servers {
            s.reset_stats();
        }
    }

    /// Arm a one-shot fault on one server (test hook).
    pub fn inject_fault(&self, server: usize, after_requests: u64) -> Result<()> {
        self.inner
            .servers
            .get(server)
            .ok_or_else(|| PfsError::Config(format!("no server {server}")))?
            .inject_fault(FaultPlan { after_requests });
        Ok(())
    }

    /// Adopt a file whose server-local streams already exist — crash
    /// recovery over a [`Backing::Crash`] registry (or a `Disk` directory)
    /// that survived the previous instance. The logical length is rebuilt
    /// as the largest global offset any surviving local stream implies;
    /// callers holding richer metadata (array headers) should correct it
    /// with [`PfsFile::set_len`] afterwards.
    pub fn recover(&self, name: &str) -> Result<PfsFile> {
        let mut flen = 0u64;
        for s in &self.inner.servers {
            s.ensure_file(name)?;
            let local = s.local_len(name)?;
            flen = flen.max(self.inner.map.global_end(s.id(), local));
        }
        self.inner.meta.lock().insert(name.to_string(), flen);
        Ok(PfsFile { inner: Arc::clone(&self.inner), name: name.to_string() })
    }
}

/// Handle to one logical striped file. Cloneable and shareable across
/// threads (ranks).
#[derive(Clone)]
pub struct PfsFile {
    inner: Arc<PfsInner>,
    name: String,
}

impl PfsFile {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical file length in bytes.
    pub fn len(&self) -> u64 {
        *self.inner.meta.lock().get(&self.name).unwrap_or(&0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read exactly `buf.len()` bytes at `offset`; the whole range must lie
    /// within the logical length.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let len = buf.len() as u64;
        self.read_extents_into(&[(offset, len)], buf)
    }

    /// Convenience: allocate and read `len` bytes at `offset`.
    pub fn read_vec(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read_at(offset, &mut buf)?;
        Ok(buf)
    }

    /// Vectored read: fill `buf` with the concatenation of the byte ranges
    /// in `extents` (each `(offset, len)`). Fragments are issued through
    /// the I/O worker pool, overlapping requests to distinct servers when
    /// the file system was configured with `io_workers > 1`.
    pub fn read_extents_into(&self, extents: &[(u64, u64)], buf: &mut [u8]) -> Result<()> {
        let flen = self.len();
        let total: u64 = extents.iter().map(|&(_, l)| l).sum();
        if total != buf.len() as u64 {
            return Err(PfsError::Config(format!(
                "extent total {total} != buffer length {}",
                buf.len()
            )));
        }
        let mut jobs: Vec<Job<'_>> = Vec::new();
        let mut rest = buf;
        for &(offset, len) in extents {
            if offset + len > flen {
                return Err(PfsError::OutOfRange { offset, len, file_len: flen });
            }
            let (ext_buf, tail) = rest.split_at_mut(len as usize);
            rest = tail;
            // Fragments tile [offset, offset+len) in increasing global
            // offset, so successive splits consume the extent's buffer.
            let mut ext_rest = ext_buf;
            for frag in self.inner.map.split(offset, len) {
                let (frag_buf, tail) = ext_rest.split_at_mut(frag.len as usize);
                ext_rest = tail;
                jobs.push(Job {
                    server: frag.server,
                    local_offset: frag.local_offset,
                    op: Op::Read(frag_buf),
                });
            }
        }
        par::run_jobs(
            &self.inner.servers,
            &self.inner.retry,
            &self.name,
            jobs,
            self.inner.io_workers,
        )
    }

    /// Vectored read returning a freshly allocated buffer.
    pub fn read_extents(&self, extents: &[(u64, u64)]) -> Result<Vec<u8>> {
        let total: u64 = extents.iter().map(|&(_, l)| l).sum();
        let mut buf = vec![0u8; total as usize];
        self.read_extents_into(extents, &mut buf)?;
        Ok(buf)
    }

    /// Write `data` at `offset`, extending the logical length if the range
    /// ends beyond it.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.write_extents(&[(offset, data.len() as u64)], data)
    }

    /// Vectored write: `data` is the concatenation of the byte ranges in
    /// `extents`. The logical length grows to cover the furthest extent.
    /// Fragments go through the I/O worker pool like
    /// [`PfsFile::read_extents_into`].
    pub fn write_extents(&self, extents: &[(u64, u64)], data: &[u8]) -> Result<()> {
        let total: u64 = extents.iter().map(|&(_, l)| l).sum();
        if total != data.len() as u64 {
            return Err(PfsError::Config(format!(
                "extent total {total} != data length {}",
                data.len()
            )));
        }
        let mut jobs: Vec<Job<'_>> = Vec::new();
        let mut rest = data;
        for &(offset, len) in extents {
            let (ext_data, tail) = rest.split_at(len as usize);
            rest = tail;
            for frag in self.inner.map.split(offset, len) {
                let start = (frag.global_offset - offset) as usize;
                jobs.push(Job {
                    server: frag.server,
                    local_offset: frag.local_offset,
                    op: Op::Write(&ext_data[start..start + frag.len as usize]),
                });
            }
        }
        par::run_jobs(
            &self.inner.servers,
            &self.inner.retry,
            &self.name,
            jobs,
            self.inner.io_workers,
        )?;
        let end = extents.iter().map(|&(o, l)| o + l).max().unwrap_or(0);
        let mut meta = self.inner.meta.lock();
        let entry =
            meta.get_mut(&self.name).ok_or_else(|| PfsError::NoSuchFile(self.name.clone()))?;
        *entry = (*entry).max(end);
        Ok(())
    }

    /// Set the logical length, zero-extending or truncating.
    pub fn set_len(&self, len: u64) -> Result<()> {
        {
            let mut meta = self.inner.meta.lock();
            let entry =
                meta.get_mut(&self.name).ok_or_else(|| PfsError::NoSuchFile(self.name.clone()))?;
            *entry = len;
        }
        // Best effort: trim the server-local stream at the boundary of the
        // new logical end (only the first fragment marks a meaningful
        // truncation point; later stripes read as zeros regardless).
        let span = self.inner.map.stripe_size() * self.inner.servers.len() as u64;
        if let Some(frag) = self.inner.map.split(len, span).first() {
            // allow-discard: stripe shrink is advisory; reads past the logical length are zeros
            let _ = self.inner.servers[frag.server].set_len(&self.name, frag.local_offset);
        }
        Ok(())
    }

    /// Number of server requests a read/write of this byte range generates.
    pub fn request_count(&self, offset: u64, len: u64) -> usize {
        self.inner.map.request_count(offset, len)
    }

    /// Durability barrier: fsync this file's stream on every server. After
    /// `sync` returns `Ok`, a crash (power loss) cannot lose the file's
    /// current contents.
    pub fn sync(&self) -> Result<()> {
        for s in &self.inner.servers {
            self.inner.retry.run(|| s.sync(&self.name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Pfs {
        Pfs::memory(4, 16).unwrap()
    }

    #[test]
    fn create_open_delete() {
        let fs = fs();
        let f = fs.create("a.xta").unwrap();
        assert!(fs.exists("a.xta"));
        assert!(fs.create("a.xta").is_err());
        assert_eq!(f.len(), 0);
        drop(f);
        let _ = fs.open("a.xta").unwrap();
        fs.delete("a.xta").unwrap();
        assert!(!fs.exists("a.xta"));
        assert!(fs.open("a.xta").is_err());
        assert!(fs.delete("a.xta").is_err());
    }

    #[test]
    fn striped_write_read_round_trip() {
        let fs = fs();
        let f = fs.create("f").unwrap();
        let data: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();
        f.write_at(5, &data).unwrap();
        assert_eq!(f.len(), 205);
        let back = f.read_vec(5, 200).unwrap();
        assert_eq!(back, data);
        // Unwritten prefix reads as zeros.
        let head = f.read_vec(0, 5).unwrap();
        assert_eq!(head, vec![0; 5]);
    }

    #[test]
    fn read_beyond_eof_errors() {
        let fs = fs();
        let f = fs.create("f").unwrap();
        f.write_at(0, &[1, 2, 3]).unwrap();
        assert!(matches!(
            f.read_at(2, &mut [0; 10]),
            Err(PfsError::OutOfRange { file_len: 3, .. })
        ));
    }

    #[test]
    fn stats_reflect_fragmentation() {
        let fs = fs(); // stripe 16, 4 servers
        let f = fs.create("f").unwrap();
        fs.reset_stats();
        f.write_at(0, &[0u8; 64]).unwrap(); // exactly one stripe per server
        let st = fs.stats();
        assert_eq!(st.total_requests(), 4);
        assert!(st.per_server.iter().all(|s| s.write_requests == 1 && s.bytes_written == 16));
        // Misaligned read of 16 bytes crosses one boundary → 2 requests.
        fs.reset_stats();
        f.read_at(8, &mut [0u8; 16]).unwrap();
        assert_eq!(fs.stats().total_requests(), 2);
    }

    #[test]
    fn clones_share_state() {
        let fs = fs();
        let f = fs.create("f").unwrap();
        let fs2 = fs.clone();
        let f2 = fs2.open("f").unwrap();
        f.write_at(0, b"shared").unwrap();
        assert_eq!(f2.read_vec(0, 6).unwrap(), b"shared");
        assert_eq!(f2.len(), 6);
    }

    #[test]
    fn set_len_truncates_logically() {
        let fs = fs();
        let f = fs.create("f").unwrap();
        f.write_at(0, &[1u8; 40]).unwrap();
        f.set_len(10).unwrap();
        assert_eq!(f.len(), 10);
        assert!(f.read_at(0, &mut [0; 11]).is_err());
        f.set_len(20).unwrap();
        assert_eq!(f.len(), 20);
    }

    #[test]
    fn injected_fault_surfaces() {
        let fs = fs();
        let f = fs.create("f").unwrap();
        fs.inject_fault(0, 0).unwrap();
        // A 64-byte write at 0 touches server 0 first.
        let err = f.write_at(0, &[0u8; 64]).unwrap_err();
        assert!(matches!(err, PfsError::Injected { server: 0, .. }));
        // After the one-shot fault, the same write succeeds.
        f.write_at(0, &[0u8; 64]).unwrap();
    }

    #[test]
    fn transient_injected_faults_are_retried_away() {
        use drx_fault::{Event, FaultKind, Injector, Script};
        // Two EINTRs early in the run: the retry policy absorbs both.
        let script = Script {
            seed: 0,
            events: vec![
                Event { at_op: 0, domain: None, op: None, kind: FaultKind::Interrupted },
                Event { at_op: 1, domain: None, op: None, kind: FaultKind::Interrupted },
            ],
        };
        let fs = Pfs::new(PfsConfig {
            n_servers: 2,
            stripe_size: 16,
            injector: Some(Arc::new(Injector::new(script))),
            retry: RetryPolicy { base_delay_us: 1, max_delay_us: 10, ..RetryPolicy::default() },
            ..PfsConfig::default()
        })
        .unwrap();
        let f = fs.create("f").unwrap();
        f.write_at(0, &[7u8; 64]).unwrap();
        assert_eq!(f.read_vec(0, 64).unwrap(), vec![7u8; 64]);
    }

    #[test]
    fn down_server_surfaces_unavailable_not_hang() {
        use drx_fault::{Injector, Script};
        let inj = Arc::new(Injector::new(Script::empty()));
        let fs = Pfs::new(PfsConfig {
            n_servers: 2,
            stripe_size: 16,
            injector: Some(Arc::clone(&inj)),
            retry: RetryPolicy { base_delay_us: 1, max_delay_us: 10, ..RetryPolicy::default() },
            ..PfsConfig::default()
        })
        .unwrap();
        let f = fs.create("f").unwrap();
        f.write_at(0, &[1u8; 64]).unwrap();
        inj.set_down(1, true);
        // A range entirely on server 0 still works (degraded mode)...
        assert_eq!(f.read_vec(0, 16).unwrap(), vec![1u8; 16]);
        // ...but touching server 1 is a typed error, immediately.
        assert!(matches!(f.read_at(16, &mut [0u8; 16]), Err(PfsError::Unavailable { server: 1 })));
        inj.set_down(1, false);
        assert_eq!(f.read_vec(16, 16).unwrap(), vec![1u8; 16]);
    }

    #[test]
    fn crash_recovery_rebuilds_logical_length() {
        use drx_fault::CrashRegistry;
        let reg = CrashRegistry::new();
        let config = PfsConfig {
            n_servers: 2,
            stripe_size: 16,
            backing: Backing::Crash(Arc::clone(&reg)),
            ..PfsConfig::default()
        };
        {
            let fs = Pfs::new(config.clone()).unwrap();
            let f = fs.create("f").unwrap();
            f.write_at(0, &[5u8; 100]).unwrap();
            f.sync().unwrap();
            f.write_at(100, &[6u8; 50]).unwrap(); // never synced
        }
        reg.crash_all(); // power loss; the old Pfs instance is gone
        let fs = Pfs::new(config).unwrap();
        assert!(!fs.exists("f")); // logical metadata did not survive
        let f = fs.recover("f").unwrap();
        assert_eq!(f.len(), 100, "only synced bytes survive the crash");
        assert_eq!(f.read_vec(0, 100).unwrap(), vec![5u8; 100]);
    }

    #[test]
    fn vectored_extents_round_trip_across_worker_counts() {
        for workers in [1usize, 2, 4, 8] {
            let fs = Pfs::new(PfsConfig {
                n_servers: 4,
                stripe_size: 16,
                io_workers: workers,
                ..PfsConfig::default()
            })
            .unwrap();
            assert_eq!(fs.io_workers(), workers);
            let f = fs.create("f").unwrap();
            let pattern: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
            // Discontiguous extents, some crossing stripe boundaries.
            let extents = [(0u64, 40u64), (60, 16), (100, 100), (200, 56)];
            let data: Vec<u8> = extents
                .iter()
                .flat_map(|&(o, l)| pattern[o as usize..(o + l) as usize].to_vec())
                .collect();
            f.set_len(256).unwrap();
            f.write_extents(&extents, &data).unwrap();
            let back = f.read_extents(&extents).unwrap();
            assert_eq!(back, data, "workers {workers}");
            // Untouched gap bytes stayed zero.
            assert_eq!(f.read_vec(40, 20).unwrap(), vec![0u8; 20]);
        }
    }

    #[test]
    fn vectored_extents_validate_sizes_and_range() {
        let fs = Pfs::new(PfsConfig {
            n_servers: 2,
            stripe_size: 16,
            io_workers: 4,
            ..PfsConfig::default()
        })
        .unwrap();
        let f = fs.create("f").unwrap();
        f.write_at(0, &[1u8; 64]).unwrap();
        // Buffer/extent mismatch.
        assert!(matches!(f.read_extents_into(&[(0, 8)], &mut [0u8; 4]), Err(PfsError::Config(_))));
        assert!(matches!(f.write_extents(&[(0, 8)], &[0u8; 4]), Err(PfsError::Config(_))));
        // An extent past EOF fails up front.
        assert!(matches!(f.read_extents(&[(0, 8), (60, 8)]), Err(PfsError::OutOfRange { .. })));
    }

    #[test]
    fn worker_pool_surfaces_down_server_errors() {
        use drx_fault::{Injector, Script};
        let inj = Arc::new(Injector::new(Script::empty()));
        let fs = Pfs::new(PfsConfig {
            n_servers: 4,
            stripe_size: 16,
            injector: Some(Arc::clone(&inj)),
            io_workers: 8, // must be clamped: injector armed
            retry: RetryPolicy { base_delay_us: 1, max_delay_us: 10, ..RetryPolicy::default() },
            ..PfsConfig::default()
        })
        .unwrap();
        assert_eq!(fs.io_workers(), 1, "injector forces sequential issue");
        let f = fs.create("f").unwrap();
        f.write_at(0, &[2u8; 128]).unwrap();
        inj.set_down(2, true);
        assert!(matches!(
            f.read_extents(&[(0, 64), (64, 64)]),
            Err(PfsError::Unavailable { server: 2 })
        ));
        inj.set_down(2, false);
        assert_eq!(f.read_extents(&[(0, 64), (64, 64)]).unwrap(), vec![2u8; 128]);
    }

    #[test]
    fn parallel_writes_from_threads() {
        let fs = Pfs::memory(4, 32).unwrap();
        let f = fs.create("f").unwrap();
        f.set_len(4 * 1024).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let f = f.clone();
                scope.spawn(move || {
                    let data = vec![t as u8 + 1; 1024];
                    f.write_at(t as u64 * 1024, &data).unwrap();
                });
            }
        });
        for t in 0..4usize {
            let back = f.read_vec(t as u64 * 1024, 1024).unwrap();
            assert!(back.iter().all(|&b| b == t as u8 + 1));
        }
    }
}
