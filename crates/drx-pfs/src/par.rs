//! Parallel extent I/O: a scoped worker pool issuing per-fragment server
//! requests concurrently.
//!
//! A vectored request ([`crate::PfsFile::read_extents_into`] /
//! [`crate::PfsFile::write_extents`]) decomposes into per-server fragments.
//! Requests to the *same* server serialize on that server's file lock, so
//! the pool keeps one queue per server and hands workers jobs from distinct
//! servers round-robin — the client-side counterpart of the paper's striped
//! I/O servers, where aggregate bandwidth comes from hitting many servers
//! at once.
//!
//! The queue lock is never held across a storage call, and the pool is
//! bypassed entirely (sequential, deterministic issue order) when the file
//! system was configured with one worker or with a fault injector armed —
//! scripted fault replays depend on a stable global request order.

use crate::error::{PfsError, Result};
use crate::retry::RetryPolicy;
use crate::server::IoServer;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Direction + buffer of one per-fragment request. Read buffers are
/// disjoint sub-slices of the caller's assembly buffer, split ahead of
/// dispatch so workers never alias.
pub(crate) enum Op<'a> {
    Read(&'a mut [u8]),
    Write(&'a [u8]),
}

/// One storage request, pre-resolved to a server and a local offset.
pub(crate) struct Job<'a> {
    pub server: usize,
    pub local_offset: u64,
    pub op: Op<'a>,
}

/// Per-server job queues behind one short-lived lock. Workers pull from a
/// rotating cursor so concurrent pulls land on *different* servers; the
/// first error aborts the remaining queue.
struct Dispenser<'a> {
    // lock-class: state => PfsParQueue
    // lock-order: PfsParQueue is leaf-only — released before any storage
    // call, never nested with PfsFiles/PfsStats/PfsBacking.
    state: Mutex<DispState<'a>>,
}

struct DispState<'a> {
    queues: Vec<VecDeque<Job<'a>>>,
    cursor: usize,
    error: Option<PfsError>,
}

impl<'a> Dispenser<'a> {
    fn new(n_servers: usize, jobs: Vec<Job<'a>>) -> Self {
        let mut queues: Vec<VecDeque<Job<'a>>> = (0..n_servers).map(|_| VecDeque::new()).collect();
        for job in jobs {
            queues[job.server].push_back(job);
        }
        Dispenser { state: Mutex::new(DispState { queues, cursor: 0, error: None }) }
    }

    /// Pop the next job, preferring the server after the one last served.
    fn next(&self) -> Option<Job<'a>> {
        let mut st = self.state.lock();
        if st.error.is_some() {
            return None;
        }
        let n = st.queues.len();
        for step in 0..n {
            let q = (st.cursor + step) % n;
            if let Some(job) = st.queues[q].pop_front() {
                st.cursor = (q + 1) % n;
                return Some(job);
            }
        }
        None
    }

    /// Record the first failure and drop all queued work.
    fn fail(&self, e: PfsError) {
        // Take the queues out instead of clearing in place: `next` bails on
        // the recorded error before touching them, and dropping outside the
        // lock keeps the critical section free of tracked call names.
        let dropped;
        {
            let mut st = self.state.lock();
            if st.error.is_none() {
                st.error = Some(e);
            }
            dropped = std::mem::take(&mut st.queues);
        }
        drop(dropped);
    }

    fn into_result(self) -> Result<()> {
        match self.state.into_inner().error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

fn run_one(servers: &[Arc<IoServer>], retry: &RetryPolicy, name: &str, job: Job<'_>) -> Result<()> {
    let server = &servers[job.server];
    match job.op {
        Op::Read(buf) => retry.run(|| server.read(name, job.local_offset, buf)),
        Op::Write(data) => retry.run(|| server.write(name, job.local_offset, data)),
    }
}

/// Execute `jobs` with up to `workers` threads. With one worker (or one
/// job) everything runs inline on the caller's thread in submission order —
/// byte-for-byte the behavior of the sequential fragment loop.
pub(crate) fn run_jobs(
    servers: &[Arc<IoServer>],
    retry: &RetryPolicy,
    name: &str,
    jobs: Vec<Job<'_>>,
    workers: usize,
) -> Result<()> {
    let workers = workers.min(jobs.len());
    if workers <= 1 {
        for job in jobs {
            run_one(servers, retry, name, job)?;
        }
        return Ok(());
    }
    let disp = Dispenser::new(servers.len(), jobs);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(job) = disp.next() {
                    if let Err(e) = run_one(servers, retry, name, job) {
                        disp.fail(e);
                    }
                }
            });
        }
    });
    disp.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Backing;
    use crate::stats::CostModel;

    fn servers(n: usize) -> Vec<Arc<IoServer>> {
        (0..n)
            .map(|id| {
                IoServer::with_injector(id, Backing::Memory, CostModel::flat(0, 0.0), None, None)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn round_robin_pulls_rotate_servers() {
        let mut jobs = Vec::new();
        let mut bufs: Vec<Vec<u8>> = (0..6).map(|_| vec![0u8; 4]).collect();
        for (i, b) in bufs.iter_mut().enumerate() {
            jobs.push(Job { server: i % 3, local_offset: 0, op: Op::Read(&mut b[..]) });
        }
        let disp = Dispenser::new(3, jobs);
        let order: Vec<usize> = std::iter::from_fn(|| disp.next().map(|j| j.server)).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn first_error_aborts_the_rest() {
        let disp = Dispenser::new(
            2,
            vec![
                Job { server: 0, local_offset: 0, op: Op::Write(&[]) },
                Job { server: 1, local_offset: 0, op: Op::Write(&[]) },
            ],
        );
        disp.fail(PfsError::Unavailable { server: 0 });
        assert!(disp.next().is_none());
        assert!(matches!(disp.into_result(), Err(PfsError::Unavailable { server: 0 })));
    }

    #[test]
    fn parallel_jobs_write_then_read_back() {
        let sv = servers(4);
        for s in &sv {
            s.ensure_file("f").unwrap();
        }
        let retry = RetryPolicy::none();
        let data: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i + 1; 64]).collect();
        let jobs: Vec<Job<'_>> = data
            .iter()
            .enumerate()
            .map(|(i, d)| Job {
                server: i % 4,
                local_offset: (i / 4) as u64 * 64,
                op: Op::Write(&d[..]),
            })
            .collect();
        run_jobs(&sv, &retry, "f", jobs, 4).unwrap();
        let mut bufs: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 64]).collect();
        let jobs: Vec<Job<'_>> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| Job {
                server: i % 4,
                local_offset: (i / 4) as u64 * 64,
                op: Op::Read(&mut b[..]),
            })
            .collect();
        run_jobs(&sv, &retry, "f", jobs, 4).unwrap();
        for (i, b) in bufs.iter().enumerate() {
            assert!(b.iter().all(|&x| x == i as u8 + 1), "slot {i}");
        }
    }
}
