//! Request statistics and the deterministic cost model.
//!
//! Benchmarks need two kinds of numbers: wall-clock time (Criterion measures
//! that) and *deterministic, reproducible* simulated time that isolates the
//! access-pattern effects the paper reasons about (seeks, request counts,
//! transferred bytes) from host noise. Each simulated I/O server charges its
//! requests against a [`CostModel`] and accumulates busy time; parallel
//! simulated time is the maximum over servers, total work the sum.

/// Deterministic cost model of one I/O server, loosely calibrated to a
/// mid-2000s cluster node (the paper's PVFS2 testbed era): ~8 ms seek,
/// ~0.1 ms per request overhead, ~60 MB/s sequential transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Charged when a request does not start where the previous one ended.
    pub seek_ns: u64,
    /// Fixed software/network overhead per request.
    pub per_request_ns: u64,
    /// Transfer time per byte (1 / bandwidth).
    pub ns_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // 8 ms seek, 100 µs request overhead, 60 MB/s ≈ 16.7 ns/byte.
        CostModel { seek_ns: 8_000_000, per_request_ns: 100_000, ns_per_byte: 16.7 }
    }
}

impl CostModel {
    /// A model with no seek penalty — useful for isolating request-count
    /// effects in tests.
    pub fn flat(per_request_ns: u64, ns_per_byte: f64) -> Self {
        CostModel { seek_ns: 0, per_request_ns, ns_per_byte }
    }

    /// Cost of one request of `len` bytes; `seek` says whether the head had
    /// to move.
    pub fn request_cost(&self, len: u64, seek: bool) -> u64 {
        let transfer = (len as f64 * self.ns_per_byte) as u64;
        self.per_request_ns + transfer + if seek { self.seek_ns } else { 0 }
    }
}

/// Upper bounds (exclusive) of the request-size histogram buckets, in
/// bytes; the last bucket is unbounded.
pub const SIZE_BUCKETS: [u64; 4] = [4 << 10, 64 << 10, 1 << 20, u64::MAX];

/// Human-readable labels for [`SIZE_BUCKETS`].
pub const SIZE_BUCKET_LABELS: [&str; 4] = ["<4K", "4K-64K", "64K-1M", ">=1M"];

/// Per-server counters. All values are cumulative since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub read_requests: u64,
    pub write_requests: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Requests that required a seek (non-contiguous with the previous
    /// request on this server).
    pub seeks: u64,
    /// Accumulated busy time under the cost model, in nanoseconds.
    pub busy_ns: u64,
    /// Request-size histogram (buckets per [`SIZE_BUCKETS`]). Small-request
    /// storms are the signature of unaligned or non-native-order access —
    /// what E3/E4 diagnose.
    pub size_histogram: [u64; 4],
}

impl ServerStats {
    pub fn requests(&self) -> u64 {
        self.read_requests + self.write_requests
    }

    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Record one request and return its cost.
    pub fn record(&mut self, cost: &CostModel, is_write: bool, len: u64, seek: bool) -> u64 {
        if is_write {
            self.write_requests += 1;
            self.bytes_written += len;
        } else {
            self.read_requests += 1;
            self.bytes_read += len;
        }
        if seek {
            self.seeks += 1;
        }
        let bucket = SIZE_BUCKETS.iter().position(|&hi| len < hi).unwrap_or(3);
        self.size_histogram[bucket] += 1;
        let c = cost.request_cost(len, seek);
        self.busy_ns += c;
        c
    }
}

/// Aggregate view across all servers of a file system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PfsStats {
    pub per_server: Vec<ServerStats>,
}

impl PfsStats {
    pub fn total_requests(&self) -> u64 {
        self.per_server.iter().map(|s| s.requests()).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.per_server.iter().map(|s| s.bytes()).sum()
    }

    pub fn total_seeks(&self) -> u64 {
        self.per_server.iter().map(|s| s.seeks).sum()
    }

    /// Simulated elapsed time assuming servers work in parallel: the busiest
    /// server bounds completion.
    pub fn sim_time_parallel_ns(&self) -> u64 {
        self.per_server.iter().map(|s| s.busy_ns).max().unwrap_or(0)
    }

    /// Total simulated work (sum of busy time) — the serial-equivalent cost.
    pub fn sim_time_total_ns(&self) -> u64 {
        self.per_server.iter().map(|s| s.busy_ns).sum()
    }

    /// Aggregate request-size histogram across servers.
    pub fn size_histogram(&self) -> [u64; 4] {
        let mut out = [0u64; 4];
        for s in &self.per_server {
            for (o, &v) in out.iter_mut().zip(&s.size_histogram) {
                *o += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_components() {
        let m = CostModel { seek_ns: 1000, per_request_ns: 10, ns_per_byte: 2.0 };
        assert_eq!(m.request_cost(5, false), 10 + 10);
        assert_eq!(m.request_cost(5, true), 10 + 10 + 1000);
        assert_eq!(m.request_cost(0, false), 10);
    }

    #[test]
    fn record_accumulates() {
        let m = CostModel::flat(10, 1.0);
        let mut s = ServerStats::default();
        let c1 = s.record(&m, false, 100, false);
        let c2 = s.record(&m, true, 50, true);
        assert_eq!(c1, 110);
        assert_eq!(c2, 60); // flat: no seek cost
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.bytes(), 150);
        assert_eq!(s.seeks, 1);
        assert_eq!(s.busy_ns, 170);
    }

    #[test]
    fn size_histogram_buckets() {
        let m = CostModel::flat(1, 0.0);
        let mut s = ServerStats::default();
        s.record(&m, false, 100, false); // <4K
        s.record(&m, false, 8 << 10, false); // 4K-64K
        s.record(&m, true, 128 << 10, false); // 64K-1M
        s.record(&m, true, 2 << 20, false); // >=1M
        assert_eq!(s.size_histogram, [1, 1, 1, 1]);
        let stats = PfsStats { per_server: vec![s, s] };
        assert_eq!(stats.size_histogram(), [2, 2, 2, 2]);
        assert_eq!(SIZE_BUCKETS.len(), SIZE_BUCKET_LABELS.len());
    }

    #[test]
    fn aggregate_parallel_vs_total() {
        let mut a = ServerStats::default();
        let mut b = ServerStats::default();
        let m = CostModel::flat(100, 0.0);
        a.record(&m, false, 0, false);
        a.record(&m, false, 0, false);
        b.record(&m, false, 0, false);
        let stats = PfsStats { per_server: vec![a, b] };
        assert_eq!(stats.total_requests(), 3);
        assert_eq!(stats.sim_time_parallel_ns(), 200);
        assert_eq!(stats.sim_time_total_ns(), 300);
    }
}
