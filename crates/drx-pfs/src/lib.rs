//! # drx-pfs — simulated striped parallel file system
//!
//! A deterministic stand-in for the PVFS2 cluster file system the paper's
//! DRX-MP testbed ran on. Logical files are striped round-robin over `N`
//! simulated I/O servers; every server request is charged against a
//! [`CostModel`] (seek + per-request overhead + transfer time), and full
//! request statistics are kept per server.
//!
//! The simulator exists because the evaluation experiments (E4 parallel
//! collective I/O, E5 chunk-vs-stripe alignment) depend on the *striping
//! geometry* — which server a byte range hits and how requests fragment at
//! stripe boundaries — not on kernel-level details. Memory backing makes
//! benches deterministic; disk backing exercises real I/O through the same
//! code path.
//!
//! ```
//! use drx_pfs::Pfs;
//!
//! let pfs = Pfs::memory(4, 1024).unwrap(); // 4 servers, 1 KiB stripes
//! let f = pfs.create("demo.xta").unwrap();
//! f.write_at(0, &[42u8; 4096]).unwrap();   // one stripe per server
//! assert_eq!(pfs.stats().total_requests(), 4);
//! assert_eq!(f.read_vec(1000, 100).unwrap(), vec![42u8; 100]);
//! ```

/// Re-export of the deterministic fault-injection toolkit (`drx-fault`):
/// scripts, the injector, and the crash-consistency file model.
pub use drx_fault as fault;

pub mod backend;
pub mod error;
pub mod file;
pub(crate) mod par;
pub mod retry;
pub mod server;
pub mod stats;
pub mod striping;

pub use backend::{CrashBackend, FaultyBackend, FileBackend, MemBackend, Storage};
pub use error::{PfsError, Result};
pub use file::{Pfs, PfsConfig, PfsFile};
pub use retry::RetryPolicy;
pub use server::{Backing, FaultPlan, IoServer};
pub use stats::{CostModel, PfsStats, ServerStats, SIZE_BUCKETS, SIZE_BUCKET_LABELS};
pub use striping::{Fragment, StripeMap};
