//! Bounded retry with exponential backoff and deterministic jitter for
//! transient storage errors.
//!
//! Only errors [`PfsError::is_transient`] classifies as re-issuable are
//! retried (`EINTR`, short transfers); permanent failures — a down stripe
//! server, a torn write, out-of-range — surface immediately. Jitter is
//! seeded so a run's timing-independent behavior (attempt counts, which
//! attempt succeeds) replays exactly under `drx-fault` scripts.

use crate::error::Result;
use drx_fault::SplitMix64;
use std::time::Duration;

/// Retry schedule: `max_attempts` total tries; the delay before attempt
/// `k+1` is `base_delay_us * 2^k`, capped at `max_delay_us`, with up to
/// 50% deterministic jitter added.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff base in microseconds.
    pub base_delay_us: u64,
    /// Backoff ceiling in microseconds.
    pub max_delay_us: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_delay_us: 50, max_delay_us: 5_000, seed: 0x5EED }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every error surfaces at once).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Run `op`, retrying transient errors per the schedule. Returns the
    /// first success, the first permanent error, or — attempts exhausted —
    /// the last transient error.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let mut rng = SplitMix64::new(self.seed);
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt + 1 < self.max_attempts.max(1) => {
                    let exp = self.base_delay_us.saturating_shl(attempt.min(32));
                    let cap = exp.min(self.max_delay_us);
                    let jitter = rng.below(cap / 2 + 1);
                    std::thread::sleep(Duration::from_micros(cap + jitter));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// `u64::checked_shl`-with-saturation helper (not in std for u64 ops with
/// overflow-to-max semantics).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            0
        } else if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PfsError;
    use std::cell::Cell;

    fn eintr() -> PfsError {
        PfsError::Io(std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR"))
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let policy = RetryPolicy { base_delay_us: 1, max_delay_us: 10, ..RetryPolicy::default() };
        let calls = Cell::new(0u32);
        let out = policy.run(|| {
            calls.set(calls.get() + 1);
            if calls.get() < 3 {
                Err(eintr())
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn permanent_errors_surface_immediately() {
        let policy = RetryPolicy::default();
        let calls = Cell::new(0u32);
        let out: Result<()> = policy.run(|| {
            calls.set(calls.get() + 1);
            Err(PfsError::Unavailable { server: 2 })
        });
        assert!(matches!(out, Err(PfsError::Unavailable { server: 2 })));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn attempts_are_bounded() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_us: 1,
            max_delay_us: 5,
            ..RetryPolicy::default()
        };
        let calls = Cell::new(0u32);
        let out: Result<()> = policy.run(|| {
            calls.set(calls.get() + 1);
            Err(eintr())
        });
        assert!(out.is_err());
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn none_policy_never_retries() {
        let calls = Cell::new(0u32);
        let out: Result<()> = RetryPolicy::none().run(|| {
            calls.set(calls.get() + 1);
            Err(eintr())
        });
        assert!(out.is_err());
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        assert_eq!(0u64.saturating_shl(40), 0);
        assert_eq!(1u64.saturating_shl(3), 8);
        assert_eq!(u64::MAX.saturating_shl(1), u64::MAX);
        assert_eq!((1u64 << 60).saturating_shl(10), u64::MAX);
    }
}
