//! A simulated I/O server: a namespace of per-file storage streams plus
//! request accounting and optional fault injection.

use crate::backend::{CrashBackend, FaultyBackend, FileBackend, MemBackend, Storage};
use crate::error::{PfsError, Result};
use crate::stats::{CostModel, ServerStats};
use drx_fault::{CrashRegistry, Injector};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// How a server materializes its local streams.
#[derive(Clone)]
pub enum Backing {
    /// Volatile in-memory buffers (default; deterministic).
    Memory,
    /// Real files under the given directory (one subdirectory per server).
    Disk(PathBuf),
    /// Crash-model buffers in a shared [`CrashRegistry`]: `sync` is the
    /// durability barrier, and the registry outlives the file system so a
    /// rebuilt instance models a post-crash reboot.
    Crash(Arc<CrashRegistry>),
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Memory => write!(f, "Memory"),
            Backing::Disk(dir) => f.debug_tuple("Disk").field(dir).finish(),
            Backing::Crash(_) => write!(f, "Crash(..)"),
        }
    }
}

/// One-shot fault plan: the request after `after_requests` more requests
/// fails with [`PfsError::Injected`].
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    pub after_requests: u64,
}

struct FileEntry {
    storage: Box<dyn Storage>,
    /// Where the previous request on this file ended, for seek detection.
    last_end: Option<u64>,
}

/// A simulated I/O server.
pub struct IoServer {
    id: usize,
    backing: Backing,
    cost: CostModel,
    // `with_entry` runs its closure under the files lock, so the entry's
    // backing store and the stats counters are ordered after it:
    // lock-order: PfsFiles -> PfsStats
    // lock-order: PfsFiles -> PfsBacking
    // lock-class: files => PfsFiles
    files: Mutex<HashMap<String, FileEntry>>,
    // lock-class: stats => PfsStats
    stats: Mutex<ServerStats>,
    // lock-class: fault => PfsFault
    fault: Mutex<Option<FaultPlan>>,
    /// Scripted fault injector shared across all servers of a file system;
    /// `None` means storage operations run unwrapped.
    injector: Option<Arc<Injector>>,
    /// Emulated wall-clock service latency charged per request, while the
    /// request holds the file table — requests to the same server serialize
    /// behind it (one service thread per server), requests to distinct
    /// servers overlap. `None` (the default) keeps the backend purely
    /// memory-speed.
    latency: Option<std::time::Duration>,
}

impl IoServer {
    pub fn new(id: usize, backing: Backing, cost: CostModel) -> Result<Arc<Self>> {
        IoServer::with_injector(id, backing, cost, None, None)
    }

    /// Like [`IoServer::new`], but every storage stream this server creates
    /// is wrapped in a [`FaultyBackend`] consulting `injector` (the server
    /// id is the fault domain), and each request sleeps `latency` while
    /// being serviced.
    pub fn with_injector(
        id: usize,
        backing: Backing,
        cost: CostModel,
        injector: Option<Arc<Injector>>,
        latency: Option<std::time::Duration>,
    ) -> Result<Arc<Self>> {
        if let Backing::Disk(dir) = &backing {
            std::fs::create_dir_all(dir.join(format!("server{id}")))?;
        }
        Ok(Arc::new(IoServer {
            id,
            backing,
            cost,
            files: Mutex::new(HashMap::new()),
            stats: Mutex::new(ServerStats::default()),
            fault: Mutex::new(None),
            injector,
            latency,
        }))
    }

    pub fn id(&self) -> usize {
        self.id
    }

    fn make_storage(&self, name: &str) -> Result<Box<dyn Storage>> {
        let inner: Box<dyn Storage> = match &self.backing {
            Backing::Memory => Box::new(MemBackend::new()),
            Backing::Disk(dir) => {
                let safe: String = name
                    .chars()
                    .map(|c| {
                        if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                            c
                        } else {
                            '_'
                        }
                    })
                    .collect();
                Box::new(FileBackend::open(&dir.join(format!("server{}", self.id)).join(safe))?)
            }
            Backing::Crash(registry) => {
                Box::new(CrashBackend::new(registry.open(&format!("server{}/{name}", self.id))))
            }
        };
        Ok(match &self.injector {
            Some(inj) => Box::new(FaultyBackend::new(inner, Arc::clone(inj), self.id)),
            None => inner,
        })
    }

    fn check_fault(&self, detail: &str) -> Result<()> {
        let mut guard = self.fault.lock();
        if let Some(plan) = guard.as_mut() {
            if plan.after_requests == 0 {
                *guard = None;
                return Err(PfsError::Injected { server: self.id, detail: detail.to_string() });
            }
            plan.after_requests -= 1;
        }
        Ok(())
    }

    /// Arm a one-shot fault: fail the request issued after `after_requests`
    /// more successful requests.
    pub fn inject_fault(&self, plan: FaultPlan) {
        *self.fault.lock() = Some(plan);
    }

    /// Ensure the server has a stream for `name` (idempotent).
    pub fn ensure_file(&self, name: &str) -> Result<()> {
        let mut files = self.files.lock();
        if !files.contains_key(name) {
            let storage = self.make_storage(name)?;
            files.insert(name.to_string(), FileEntry { storage, last_end: None });
        }
        Ok(())
    }

    /// Drop the stream for `name`.
    pub fn remove_file(&self, name: &str) -> Result<()> {
        self.files.lock().remove(name);
        if let Backing::Disk(dir) = &self.backing {
            let path = dir.join(format!("server{}", self.id)).join(name);
            // allow-discard: the file may never have been spilled to disk
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    fn with_entry<R>(&self, name: &str, f: impl FnOnce(&mut FileEntry) -> Result<R>) -> Result<R> {
        let mut files = self.files.lock();
        let entry = files
            .get_mut(name)
            .ok_or_else(|| PfsError::NoSuchFile(format!("{name} (server {})", self.id)))?;
        f(entry)
    }

    /// Service one read request against a file's local stream.
    pub fn read(&self, name: &str, local_offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_fault("read")?;
        self.with_entry(name, |entry| {
            if let Some(lat) = self.latency {
                std::thread::sleep(lat);
            }
            let seek = entry.last_end != Some(local_offset);
            entry.last_end = Some(local_offset + buf.len() as u64);
            self.stats.lock().record(&self.cost, false, buf.len() as u64, seek);
            entry.storage.read_at(local_offset, buf)
        })
    }

    /// Service one write request against a file's local stream.
    pub fn write(&self, name: &str, local_offset: u64, data: &[u8]) -> Result<()> {
        self.check_fault("write")?;
        self.with_entry(name, |entry| {
            if let Some(lat) = self.latency {
                std::thread::sleep(lat);
            }
            let seek = entry.last_end != Some(local_offset);
            entry.last_end = Some(local_offset + data.len() as u64);
            self.stats.lock().record(&self.cost, true, data.len() as u64, seek);
            entry.storage.write_at(local_offset, data)
        })
    }

    /// Truncate/extend a file's local stream (not charged to the cost model).
    pub fn set_len(&self, name: &str, len: u64) -> Result<()> {
        self.with_entry(name, |entry| entry.storage.set_len(len))
    }

    /// Force a file's local stream to durable storage (fsync barrier).
    pub fn sync(&self, name: &str) -> Result<()> {
        self.with_entry(name, |entry| entry.storage.sync())
    }

    /// Locally written length of a file's stream in bytes.
    pub fn local_len(&self, name: &str) -> Result<u64> {
        self.with_entry(name, |entry| entry.storage.len())
    }

    /// Snapshot of this server's counters.
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }

    /// Reset counters (not the stored data, nor the seek tracker).
    pub fn reset_stats(&self) {
        *self.stats.lock() = ServerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Arc<IoServer> {
        IoServer::new(0, Backing::Memory, CostModel::flat(10, 1.0)).unwrap()
    }

    #[test]
    fn read_write_round_trip() {
        let s = server();
        s.ensure_file("f").unwrap();
        s.write("f", 5, b"abc").unwrap();
        let mut buf = [0u8; 3];
        s.read("f", 5, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        assert!(s.read("missing", 0, &mut buf).is_err());
    }

    #[test]
    fn seek_detection_is_sequential_aware() {
        let s = server();
        s.ensure_file("f").unwrap();
        s.write("f", 0, &[0; 10]).unwrap(); // first request: seek
        s.write("f", 10, &[0; 10]).unwrap(); // contiguous: no seek
        s.write("f", 5, &[0; 2]).unwrap(); // backwards: seek
        let st = s.stats();
        assert_eq!(st.write_requests, 3);
        assert_eq!(st.seeks, 2);
        assert_eq!(st.bytes_written, 22);
    }

    #[test]
    fn fault_injection_fires_once() {
        let s = server();
        s.ensure_file("f").unwrap();
        s.inject_fault(FaultPlan { after_requests: 1 });
        s.write("f", 0, b"x").unwrap(); // 1 more allowed
        let err = s.write("f", 1, b"y").unwrap_err();
        assert!(matches!(err, PfsError::Injected { server: 0, .. }));
        // One-shot: next request succeeds again.
        s.write("f", 1, b"y").unwrap();
    }

    #[test]
    fn ensure_is_idempotent_and_remove_works() {
        let s = server();
        s.ensure_file("f").unwrap();
        s.write("f", 0, b"z").unwrap();
        s.ensure_file("f").unwrap(); // must not wipe data
        let mut buf = [0u8; 1];
        s.read("f", 0, &mut buf).unwrap();
        assert_eq!(&buf, b"z");
        s.remove_file("f").unwrap();
        assert!(s.read("f", 0, &mut buf).is_err());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let s = server();
        s.ensure_file("f").unwrap();
        s.write("f", 0, b"abc").unwrap();
        assert_eq!(s.stats().requests(), 1);
        s.reset_stats();
        assert_eq!(s.stats().requests(), 0);
    }
}
