//! Round-robin striping — the data distribution PVFS2 applies to file
//! contents across its I/O servers.
//!
//! A logical byte offset is decomposed into a stripe index; stripes are dealt
//! round-robin to the servers. A logical request that spans stripe
//! boundaries splits into per-server fragments — the fragmentation measured
//! by experiment E5 (chunk size vs stripe size reconciliation, the paper's
//! §V future-work item).

use crate::error::{PfsError, Result};

/// One fragment of a logical request, addressed to a single server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fragment {
    /// Which server holds the bytes.
    pub server: usize,
    /// Offset in the server's local file.
    pub local_offset: u64,
    /// Offset in the logical file.
    pub global_offset: u64,
    /// Fragment length in bytes.
    pub len: u64,
}

/// The striping geometry of a file system: `n_servers` servers, fixed
/// `stripe_size` in bytes, round-robin layout starting at server 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeMap {
    stripe_size: u64,
    n_servers: usize,
}

impl StripeMap {
    pub fn new(n_servers: usize, stripe_size: u64) -> Result<Self> {
        if n_servers == 0 {
            return Err(PfsError::Config("need at least one I/O server".into()));
        }
        if stripe_size == 0 {
            return Err(PfsError::Config("stripe size must be positive".into()));
        }
        Ok(StripeMap { stripe_size, n_servers })
    }

    pub fn stripe_size(&self) -> u64 {
        self.stripe_size
    }

    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Locate a single byte: `(server, local offset)`.
    pub fn locate(&self, offset: u64) -> (usize, u64) {
        let stripe = offset / self.stripe_size;
        let within = offset % self.stripe_size;
        let server = (stripe % self.n_servers as u64) as usize;
        let local_stripe = stripe / self.n_servers as u64;
        (server, local_stripe * self.stripe_size + within)
    }

    /// Split the logical byte range `[offset, offset+len)` into per-server
    /// fragments, in increasing `global_offset` order. Adjacent stripes on
    /// the *same* server (possible when `n_servers == 1`) are coalesced.
    pub fn split(&self, offset: u64, len: u64) -> Vec<Fragment> {
        let mut frags: Vec<Fragment> = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let (server, local_offset) = self.locate(pos);
            let stripe_end = (pos / self.stripe_size + 1) * self.stripe_size;
            let frag_len = stripe_end.min(end) - pos;
            match frags.last_mut() {
                Some(last)
                    if last.server == server
                        && last.local_offset + last.len == local_offset
                        && last.global_offset + last.len == pos =>
                {
                    last.len += frag_len;
                }
                _ => {
                    frags.push(Fragment { server, local_offset, global_offset: pos, len: frag_len })
                }
            }
            pos += frag_len;
        }
        frags
    }

    /// Number of server requests the range will generate (fragments after
    /// coalescing) — the E5 metric.
    pub fn request_count(&self, offset: u64, len: u64) -> usize {
        self.split(offset, len).len()
    }

    /// Inverse of [`StripeMap::locate`]: the logical offset of local byte
    /// `local_offset` on `server`.
    pub fn global_offset(&self, server: usize, local_offset: u64) -> u64 {
        let local_stripe = local_offset / self.stripe_size;
        let within = local_offset % self.stripe_size;
        let stripe = local_stripe * self.n_servers as u64 + server as u64;
        stripe * self.stripe_size + within
    }

    /// The logical length implied by `server` holding `local_len` local
    /// bytes: one past the global offset of its last local byte. Used by
    /// crash recovery to rebuild logical file lengths from the surviving
    /// server-local streams.
    pub fn global_end(&self, server: usize, local_len: u64) -> u64 {
        if local_len == 0 {
            0
        } else {
            self.global_offset(server, local_len - 1) + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_round_robin() {
        let m = StripeMap::new(4, 100).unwrap();
        assert_eq!(m.locate(0), (0, 0));
        assert_eq!(m.locate(99), (0, 99));
        assert_eq!(m.locate(100), (1, 0));
        assert_eq!(m.locate(399), (3, 99));
        // Second round: stripe 4 lands on server 0 at local offset 100.
        assert_eq!(m.locate(400), (0, 100));
        assert_eq!(m.locate(450), (0, 150));
    }

    #[test]
    fn split_within_one_stripe() {
        let m = StripeMap::new(4, 100).unwrap();
        let f = m.split(120, 50);
        assert_eq!(f, vec![Fragment { server: 1, local_offset: 20, global_offset: 120, len: 50 }]);
    }

    #[test]
    fn split_across_stripes() {
        let m = StripeMap::new(2, 100).unwrap();
        let f = m.split(50, 200);
        assert_eq!(
            f,
            vec![
                Fragment { server: 0, local_offset: 50, global_offset: 50, len: 50 },
                Fragment { server: 1, local_offset: 0, global_offset: 100, len: 100 },
                Fragment { server: 0, local_offset: 100, global_offset: 200, len: 50 },
            ]
        );
    }

    #[test]
    fn split_single_server_coalesces() {
        let m = StripeMap::new(1, 64).unwrap();
        let f = m.split(0, 1000);
        assert_eq!(f.len(), 1, "single server: all stripes are contiguous locally");
        assert_eq!(f[0].len, 1000);
    }

    #[test]
    fn split_covers_range_exactly() {
        let m = StripeMap::new(3, 37).unwrap();
        let f = m.split(11, 1000);
        let total: u64 = f.iter().map(|x| x.len).sum();
        assert_eq!(total, 1000);
        // Fragments are ordered and contiguous in global offsets.
        let mut pos = 11;
        for frag in &f {
            assert_eq!(frag.global_offset, pos);
            pos += frag.len;
        }
    }

    #[test]
    fn aligned_requests_touch_one_server() {
        // A chunk exactly equal to the stripe size, aligned, is one request;
        // misaligned chunks double the request count (the E5 effect).
        let m = StripeMap::new(4, 4096).unwrap();
        assert_eq!(m.request_count(4096 * 3, 4096), 1);
        assert_eq!(m.request_count(4096 * 3 + 100, 4096), 2);
    }

    #[test]
    fn global_offset_inverts_locate() {
        let m = StripeMap::new(3, 37).unwrap();
        for offset in (0..2000u64).step_by(13) {
            let (server, local) = m.locate(offset);
            assert_eq!(m.global_offset(server, local), offset);
        }
    }

    #[test]
    fn global_end_recovers_logical_length() {
        let m = StripeMap::new(4, 100).unwrap();
        assert_eq!(m.global_end(0, 0), 0);
        // Server 0 holding 100 local bytes = logical stripe 0 complete.
        assert_eq!(m.global_end(0, 100), 100);
        // Server 2 holding 50 bytes: last byte is logical offset 249.
        assert_eq!(m.global_end(2, 50), 250);
        // A file of logical length L: max over servers reconstructs L.
        for flen in [1u64, 99, 100, 101, 399, 400, 401, 1234] {
            let recovered = (0..4)
                .map(|s| {
                    // Local length of server s for a dense file of length flen.
                    let local = (0..flen)
                        .filter(|&g| m.locate(g).0 == s)
                        .map(|g| m.locate(g).1 + 1)
                        .max()
                        .unwrap_or(0);
                    m.global_end(s, local)
                })
                .max()
                .unwrap_or(0);
            assert_eq!(recovered, flen, "flen {flen}");
        }
    }

    #[test]
    fn empty_range_and_config_errors() {
        let m = StripeMap::new(2, 10).unwrap();
        assert!(m.split(5, 0).is_empty());
        assert!(StripeMap::new(0, 10).is_err());
        assert!(StripeMap::new(2, 0).is_err());
    }
}
