//! Property tests for the striping layer and the striped file semantics.

use drx_pfs::{Pfs, StripeMap};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fragments of any range are ordered, contiguous in global offsets,
    /// cover exactly the range, and agree with per-byte locate().
    #[test]
    fn split_is_an_exact_ordered_cover(
        n_servers in 1usize..8,
        stripe in 1u64..128,
        offset in 0u64..1000,
        len in 0u64..2000,
    ) {
        let m = StripeMap::new(n_servers, stripe).unwrap();
        let frags = m.split(offset, len);
        let mut pos = offset;
        for f in &frags {
            prop_assert_eq!(f.global_offset, pos);
            prop_assert!(f.len > 0);
            // The fragment's first byte maps to its (server, local_offset).
            let (srv, local) = m.locate(f.global_offset);
            prop_assert_eq!(srv, f.server);
            prop_assert_eq!(local, f.local_offset);
            // Every byte of the fragment stays on that server, locally
            // contiguous.
            let (srv_end, local_end) = m.locate(f.global_offset + f.len - 1);
            prop_assert_eq!(srv_end, f.server);
            prop_assert_eq!(local_end, f.local_offset + f.len - 1);
            pos += f.len;
        }
        prop_assert_eq!(pos, offset + len);
    }

    /// Whatever is written at any offset reads back identically, across
    /// arbitrary striping geometries.
    #[test]
    fn write_read_round_trip_any_geometry(
        n_servers in 1usize..6,
        stripe in 1u64..64,
        offset in 0u64..500,
        data in prop::collection::vec(any::<u8>(), 1..700),
    ) {
        let pfs = Pfs::memory(n_servers, stripe).unwrap();
        let f = pfs.create("f").unwrap();
        f.write_at(offset, &data).unwrap();
        prop_assert_eq!(f.len(), offset + data.len() as u64);
        let back = f.read_vec(offset, data.len()).unwrap();
        prop_assert_eq!(back, data);
        // The unwritten prefix reads as zeros.
        if offset > 0 {
            let head = f.read_vec(0, offset as usize).unwrap();
            prop_assert!(head.iter().all(|&b| b == 0));
        }
    }

    /// Overlapping writes: the later write wins on the overlap, earlier
    /// bytes survive elsewhere.
    #[test]
    fn overlapping_writes_last_wins(
        stripe in 1u64..32,
        a_off in 0u64..100,
        a in prop::collection::vec(1u8..=1, 1..200),
        b_off in 0u64..150,
        b in prop::collection::vec(2u8..=2, 1..200),
    ) {
        let pfs = Pfs::memory(3, stripe).unwrap();
        let f = pfs.create("f").unwrap();
        f.write_at(a_off, &a).unwrap();
        f.write_at(b_off, &b).unwrap();
        let total = f.len();
        let all = f.read_vec(0, total as usize).unwrap();
        for (i, &v) in all.iter().enumerate() {
            let i = i as u64;
            let in_a = i >= a_off && i < a_off + a.len() as u64;
            let in_b = i >= b_off && i < b_off + b.len() as u64;
            let expect = if in_b { 2 } else if in_a { 1 } else { 0 };
            prop_assert_eq!(v, expect, "byte {}", i);
        }
    }

    /// Request accounting: a full-range read touches each server's stats
    /// with exactly the fragment count of the range.
    #[test]
    fn stats_match_fragment_counts(
        n_servers in 1usize..5,
        stripe in 1u64..64,
        len in 1u64..1000,
    ) {
        let pfs = Pfs::memory(n_servers, stripe).unwrap();
        let f = pfs.create("f").unwrap();
        f.write_at(0, &vec![7u8; len as usize]).unwrap();
        pfs.reset_stats();
        let _ = f.read_vec(0, len as usize).unwrap();
        let expected = StripeMap::new(n_servers, stripe).unwrap().request_count(0, len) as u64;
        prop_assert_eq!(pfs.stats().total_requests(), expected);
        prop_assert_eq!(pfs.stats().total_bytes(), len);
    }
}
