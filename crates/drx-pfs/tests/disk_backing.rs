//! Integration test of the real-disk backend: the same PFS code path backed
//! by actual files on the host file system.

use drx_pfs::{Backing, CostModel, Pfs, PfsConfig};

fn disk_pfs(tag: &str) -> (Pfs, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("drx-pfs-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let pfs = Pfs::new(PfsConfig {
        n_servers: 3,
        stripe_size: 128,
        cost: CostModel::flat(10, 1.0),
        backing: Backing::Disk(dir.clone()),
        ..PfsConfig::default()
    })
    .unwrap();
    (pfs, dir)
}

#[test]
fn disk_backed_round_trip_and_layout() {
    let (pfs, dir) = disk_pfs("rt");
    let f = pfs.create("data.xta").unwrap();
    let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
    f.write_at(64, &payload).unwrap();
    assert_eq!(f.read_vec(64, payload.len()).unwrap(), payload);
    // Server directories exist and hold the stripes.
    for s in 0..3 {
        let server_dir = dir.join(format!("server{s}"));
        assert!(server_dir.is_dir(), "missing {server_dir:?}");
        let file = server_dir.join("data.xta");
        assert!(file.is_file());
        assert!(std::fs::metadata(&file).unwrap().len() > 0);
    }
    // Reads spanning stripes work after reopening handles.
    let g = pfs.open("data.xta").unwrap();
    assert_eq!(g.read_vec(64 + 500, 100).unwrap(), payload[500..600].to_vec());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_backed_delete_removes_server_files() {
    let (pfs, dir) = disk_pfs("del");
    let f = pfs.create("gone").unwrap();
    f.write_at(0, b"abc").unwrap();
    pfs.delete("gone").unwrap();
    for s in 0..3 {
        assert!(!dir.join(format!("server{s}")).join("gone").exists());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn odd_file_names_are_sanitized() {
    let (pfs, dir) = disk_pfs("names");
    let f = pfs.create("weird/../name with spaces").unwrap();
    f.write_at(0, b"ok").unwrap();
    assert_eq!(f.read_vec(0, 2).unwrap(), b"ok");
    // No path traversal: everything stays under the server directories.
    for entry in std::fs::read_dir(dir.join("server0")).unwrap() {
        let name = entry.unwrap().file_name();
        let name = name.to_string_lossy().to_string();
        assert!(!name.contains('/'));
        assert!(!name.contains(' '));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_backed_survives_concurrent_writers() {
    let (pfs, dir) = disk_pfs("conc");
    let f = pfs.create("shared").unwrap();
    f.set_len(4096).unwrap();
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let f = f.clone();
            scope.spawn(move || {
                f.write_at(t as u64 * 1024, &vec![t as u8 + 1; 1024]).unwrap();
            });
        }
    });
    for t in 0..4usize {
        let back = f.read_vec(t as u64 * 1024, 1024).unwrap();
        assert!(back.iter().all(|&b| b == t as u8 + 1), "region {t}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
