//! End-to-end fault injection over the striped file layer: scripted faults
//! flow through `FaultyBackend` → `IoServer` → `PfsFile`, transient ones
//! are retried away, permanent ones surface as typed errors, and the whole
//! run is replayable from the script alone.

use drx_pfs::fault::{Injector, Script};
use drx_pfs::{Pfs, PfsConfig, PfsError};
use std::sync::Arc;

fn pfs_with(script: Script, n_servers: usize, stripe: u64) -> (Pfs, Arc<Injector>) {
    let inj = Arc::new(Injector::new(script));
    let pfs = Pfs::new(PfsConfig {
        n_servers,
        stripe_size: stripe,
        injector: Some(Arc::clone(&inj)),
        ..PfsConfig::default()
    })
    .expect("pfs construction");
    (pfs, inj)
}

/// The replayability contract, end to end: the same seed-generated script
/// over the same workload produces the same per-operation outcomes and the
/// same fired-event log.
#[test]
fn seeded_workload_is_replayable() {
    let run = |seed: u64| {
        let (pfs, inj) = pfs_with(Script::from_seed(seed, 6, 4), 4, 1024);
        let f = pfs.create("w.bin").expect("create");
        let mut outcomes = Vec::new();
        for i in 0..32u64 {
            outcomes.push(f.write_at(i * 512, &[i as u8; 512]).is_ok());
        }
        for i in 0..32u64 {
            outcomes.push(f.read_vec(i * 512, 512).is_ok());
        }
        outcomes.push(f.sync().is_ok());
        (outcomes, inj.fired())
    };
    let (outcomes_a, fired_a) = run(0xD5EED);
    let (outcomes_b, fired_b) = run(0xD5EED);
    assert_eq!(outcomes_a, outcomes_b);
    assert_eq!(fired_a, fired_b);
    assert!(!fired_a.is_empty(), "seed produced no faults — test is vacuous");
}

/// Transient faults (short read, EINTR) are absorbed by the retry policy;
/// the caller sees plain success with correct data.
#[test]
fn transient_faults_are_invisible_to_callers() {
    // The workload writes first (fragment ops 0..2), then reads: arm the
    // write fault immediately and the read faults once reading starts.
    let script = Script::parse(
        "@0 op=write interrupt\n\
         @3 op=read short-read\n\
         @4 op=read interrupt\n",
    )
    .expect("script");
    let (pfs, inj) = pfs_with(script, 2, 64);
    let f = pfs.create("t.bin").expect("create");
    f.write_at(0, &[7u8; 128]).expect("write rides out injected EINTR");
    assert_eq!(f.read_vec(0, 128).expect("read rides out short read + EINTR"), vec![7u8; 128]);
    let retried = inj.fired();
    assert_eq!(retried.len(), 3, "all three scripted faults fired: {retried:?}");
}

/// A scripted down window turns requests touching that server into typed
/// `Unavailable` errors — immediately, no retry spin — and the matching
/// `up` event restores full service. Fragments on other servers keep
/// working throughout (degraded-mode reads).
#[test]
fn scripted_down_window_fails_typed_then_recovers() {
    // Stripe 64 over 2 servers: offset 0 → server 0, offset 64 → server 1.
    let script = Script::parse("@1 server=1 down\n@3 server=1 up\n").expect("script");
    let (pfs, _inj) = pfs_with(script, 2, 64);
    let f = pfs.create("d.bin").expect("create");
    f.write_at(0, &[1u8; 64]).expect("op 0: server 0 up");
    match f.write_at(64, &[2u8; 64]) {
        Err(PfsError::Unavailable { server: 1 }) => {}
        other => panic!("expected Unavailable from downed server, got {other:?}"),
    }
    f.write_at(0, &[3u8; 64]).expect("op 2: server 0 unaffected while 1 is down");
    f.write_at(64, &[4u8; 64]).expect("op 3: server 1 back up");
    assert_eq!(f.read_vec(0, 64).expect("read server 0"), vec![3u8; 64]);
    assert_eq!(f.read_vec(64, 64).expect("read server 1"), vec![4u8; 64]);
}

/// A torn write is permanent: it surfaces as `PfsError::Torn` (never
/// retried — retrying would double-apply a partial mutation) and leaves
/// exactly the prefix on storage that a crash mid-write would.
#[test]
fn torn_write_surfaces_typed_error_with_prefix_persisted() {
    let script = Script::parse("@0 op=write torn-write\n").expect("script");
    let (pfs, inj) = pfs_with(script, 1, 1024);
    let f = pfs.create("torn.bin").expect("create");
    // Pre-size the file so the post-mortem read is in logical bounds: a
    // failed write never advances the logical length.
    f.set_len(8).expect("set_len");
    match f.write_at(0, &[0xAB; 8]) {
        Err(PfsError::Torn { server: 0, written: 4 }) => {}
        other => panic!("expected Torn{{written: 4}}, got {other:?}"),
    }
    assert_eq!(inj.fired().len(), 1);
    // The prefix persisted; the tail reads back as holes (zeros).
    assert_eq!(f.read_vec(0, 8).expect("read after torn write"), b"\xAB\xAB\xAB\xAB\0\0\0\0");
}
