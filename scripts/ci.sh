#!/usr/bin/env bash
# The full local CI gate: everything a PR must pass.
#
#   scripts/ci.sh          # run all stages
#
# Stages mirror what the repo considers tier-1 (ROADMAP.md) plus style:
#   1. release build of the whole workspace
#   2. the test suite (quiet)
#   3. rustfmt --check
#   4. clippy with warnings denied
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> CI green"
