#!/usr/bin/env bash
# The full local CI gate: everything a PR must pass.
#
#   scripts/ci.sh          # run all stages
#
# Stages mirror what the repo considers tier-1 (ROADMAP.md) plus style:
#   1. release build of the whole workspace
#   2. the test suite (quiet)
#   3. rustfmt --check
#   4. clippy with warnings denied
#   5. drx-analyze: lock-order / panic-ratchet / proto / unsafe / discard lints
#   6. drx-sched: exhaustive bounded schedule exploration of the lock + cache
#      layer (separate target dir so the cfg flip does not thrash the cache)
#   7. fault matrix: the seeded fault-injection sweep under three fixed
#      seeds plus one randomized seed, echoed so any failure is replayable
#      with DRX_FAULT_SEED=<seed>
#   8. bench smoke: a tiny harness run that must emit valid JSON and prove
#      the memcpy fast path is actually taken (kernel counters)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> drx-analyze (workspace invariant lints)"
cargo test -q -p drx-analyze
cargo run -q --release -p drx-analyze -- check

echo "==> drx-sched (bounded schedule exploration)"
RUSTFLAGS="--cfg drx_sched" CARGO_TARGET_DIR=target/sched \
    cargo test -q -p drx-server --test sched_explore

echo "==> fault matrix (fixed seeds 1 2 3 + one randomized)"
for seed in 1 2 3; do
    echo "--- fault seed $seed"
    DRX_FAULT_SEED=$seed cargo test -q --test fault_matrix
done
rand_seed=$(( (RANDOM << 15) | RANDOM ))
echo "--- randomized fault seed $rand_seed (replay: DRX_FAULT_SEED=$rand_seed cargo test --test fault_matrix)"
DRX_FAULT_SEED=$rand_seed cargo test -q --test fault_matrix

echo "==> bench smoke (quick harness run, JSON validity, fast-path counters)"
smoke_json=$(mktemp /tmp/drx-bench-smoke.XXXXXX.json)
trap 'rm -f "$smoke_json"' EXIT
cargo run -q --release -p drx-bench --bin harness -- --quick e10 --json "$smoke_json"
python3 - "$smoke_json" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    d = json.load(fh)
assert d["bench"] == "pr4_fastpath", d
assert d["planning"]["chunks"] > 0, "planning measured nothing"
assert d["scatter"]["memcpy_calls"] > 0, "memcpy fast path never taken"
assert d["scatter"]["memcpy_bytes"] > 0, "memcpy fast path moved no bytes"
assert len(d["parallel_io"]["cold_read"]) >= 2, "worker sweep too small"
print("bench smoke OK:", sys.argv[1])
EOF

echo "==> CI green"
