//! Order-neutral access: one writer produces a matrix in C (row-major)
//! order; a FORTRAN-style consumer reads it column-major. With a
//! conventional row-major file the column traversal fragments into tiny
//! strided reads; the DRX chunked layout serves both orders by scanning
//! chunks sequentially and transposing on the fly in memory (paper §I,
//! §II-A).
//!
//! Run with: `cargo run --example matrix_order`

use drx::baselines::RowMajorFile;
use drx::serial::DrxFile;
use drx::{Layout, Pfs, Region};

const N: usize = 256;
const CHUNK: usize = 32;
const PANELS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = Region::new(vec![0, 0], vec![N, N])?;
    let matrix: Vec<f64> = (0..(N * N) as u64).map(|x| x as f64).collect();

    // --- Conventional row-major file ---------------------------------
    let pfs_rm = Pfs::memory(4, 64 * 1024)?;
    let mut rm: RowMajorFile<f64> = RowMajorFile::create(&pfs_rm, "matrix.raw", &[N, N])?;
    rm.write_region(&full, Layout::C, &matrix)?;

    // --- DRX chunked extendible file ----------------------------------
    let pfs_dx = Pfs::memory(4, 64 * 1024)?;
    let mut dx: DrxFile<f64> = DrxFile::create(&pfs_dx, "matrix", &[CHUNK, CHUNK], &[N, N])?;
    dx.write_region(&full, Layout::C, &matrix)?;

    // The consumer streams the matrix in COLUMN panels (a column-major
    // out-of-core kernel holding one panel at a time).
    let width = N / PANELS;
    let mut checksum_rm = 0.0;
    let mut checksum_dx = 0.0;

    pfs_rm.reset_stats();
    for p in 0..PANELS {
        let panel = Region::new(vec![0, p * width], vec![N, (p + 1) * width])?;
        let data = rm.read_region(&panel, Layout::Fortran)?;
        checksum_rm += data.iter().sum::<f64>();
    }
    let st_rm = pfs_rm.stats();

    pfs_dx.reset_stats();
    for p in 0..PANELS {
        let panel = Region::new(vec![0, p * width], vec![N, (p + 1) * width])?;
        let data = dx.read_region(&panel, Layout::Fortran)?;
        checksum_dx += data.iter().sum::<f64>();
    }
    let st_dx = pfs_dx.stats();

    assert_eq!(checksum_rm, checksum_dx, "both paths read the same matrix");
    println!("column-panel traversal of a {N}×{N} f64 matrix ({PANELS} panels):");
    println!(
        "  row-major file : {:>6} PFS requests, {:>6} seeks, simulated {:.1} ms",
        st_rm.total_requests(),
        st_rm.total_seeks(),
        st_rm.sim_time_parallel_ns() as f64 / 1e6
    );
    println!(
        "  DRX chunked    : {:>6} PFS requests, {:>6} seeks, simulated {:.1} ms",
        st_dx.total_requests(),
        st_dx.total_seeks(),
        st_dx.sim_time_parallel_ns() as f64 / 1e6
    );
    let speedup = st_rm.sim_time_parallel_ns() as f64 / st_dx.sim_time_parallel_ns().max(1) as f64;
    println!("  → chunked layout is {speedup:.1}× faster in simulated time");
    assert!(st_dx.total_requests() < st_rm.total_requests());

    // Consistency: a FORTRAN read equals the in-memory transpose of a C read.
    let sub = Region::new(vec![10, 20], vec![14, 26])?;
    let c = dx.read_region(&sub, Layout::C)?;
    let f = dx.read_region(&sub, Layout::Fortran)?;
    let transposed = drx::order::relayout(&c, &sub.extents(), Layout::C, Layout::Fortran)?;
    assert_eq!(f, transposed);
    println!("FORTRAN-order read verified against in-memory transpose of the C-order read");
    Ok(())
}
