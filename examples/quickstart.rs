//! Quickstart: create an out-of-core dense extendible array, grow it along
//! both dimensions, and read a sub-array back in either memory order.
//!
//! Run with: `cargo run --example quickstart`

use drx::serial::DrxFile;
use drx::{Layout, Pfs, Region};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated parallel file system: 4 I/O servers, 64 KiB stripes.
    // (Use `PfsConfig` with `Backing::Disk(dir)` for real files.)
    let pfs = Pfs::memory(4, 64 * 1024)?;

    // Create `demo.xmd` + `demo.xta`: a 10×12 array of f64 in 2×3 chunks —
    // the exact configuration of the paper's Figure 1.
    let mut array: DrxFile<f64> = DrxFile::create(&pfs, "demo", &[2, 3], &[10, 12])?;
    array.fill_with(|idx| (idx[0] * 100 + idx[1]) as f64)?;

    // The element ⟨9,7⟩ lives in chunk [4,2] at linear address 18 — the
    // value the paper computes with F*.
    let (chunk_addr, _within) = array.meta().locate_element(&[9, 7])?;
    println!("chunk address of element (9,7): {chunk_addr} (paper: 18)");

    // Extend BOTH dimensions — something a conventional array file cannot
    // do without rewriting. Existing chunks never move.
    array.extend(0, 6)?; // now 16×12
    array.extend(1, 8)?; // now 16×20
    println!("bounds after extension: {:?}", array.bounds());
    assert_eq!(array.meta().locate_element(&[9, 7])?.0, chunk_addr, "chunk did not move");

    // Old data is intact; new cells read as 0.0.
    assert_eq!(array.get(&[9, 7])?, 907.0);
    assert_eq!(array.get(&[15, 19])?, 0.0);

    // Read a sub-array in C order and in FORTRAN order — the transposition
    // happens on the fly, never out-of-core.
    let region = Region::new(vec![8, 6], vec![11, 9])?;
    let c_order = array.read_region(&region, Layout::C)?;
    let f_order = array.read_region(&region, Layout::Fortran)?;
    println!("region {:?}..{:?} in C order:       {c_order:?}", region.lo(), region.hi());
    println!("region {:?}..{:?} in FORTRAN order: {f_order:?}", region.lo(), region.hi());

    // Everything persisted: reopen and check.
    drop(array);
    let array: DrxFile<f64> = DrxFile::open(&pfs, "demo")?;
    assert_eq!(array.bounds(), &[16, 20]);
    assert_eq!(array.get(&[10, 11])?, 0.0);
    assert_eq!(array.get(&[9, 11])?, 911.0);
    println!("reopened OK; PFS stats: {} requests", pfs.stats().total_requests());
    Ok(())
}
