//! The paper's Figure 1 scenario end to end: a 2-D extendible array
//! (A[10][12], 2×3 chunks) grown exactly as in the figure, distributed as
//! BLOCK zones onto 4 processes, and read with collective two-phase I/O.
//! Prints the zone maps from the paper's code listing and verifies the
//! contents.
//!
//! Run with: `cargo run --example parallel_zones`

use drx::parallel::{to_msg, DistSpec, DrxmpHandle};
use drx::{run_spmd, Layout, Pfs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pfs = Pfs::memory(4, 16 * 1024)?;

    // Build the principal array with the figure's growth history from a
    // 4-rank SPMD program (collective create + collective extensions).
    let fs = pfs.clone();
    run_spmd(4, move |comm| {
        let mut h: DrxmpHandle<f64> =
            DrxmpHandle::create(comm, &fs, "fig1", &[2, 3], &[2, 3], DistSpec::block(vec![2, 2]))
                .map_err(to_msg)?;
        // Element-level extensions reproducing chunk segments 1, {2,3},
        // {4,5}, {6,7,8}, {9,10,11}, {12..15}, {16..19}.
        for (dim, by) in [(1, 3), (0, 4), (1, 3), (0, 2), (1, 3), (0, 2)] {
            h.extend(dim, by).map_err(to_msg)?;
        }
        // Every rank writes its own zone collectively.
        let zone = h.my_zone().expect("all ranks own zones");
        let data: Vec<f64> = zone.iter().map(|i| (i[0] * 12 + i[1]) as f64).collect();
        h.write_my_zone(Layout::C, Some(&data)).map_err(to_msg)?;
        h.close().map_err(to_msg)?;
        Ok(())
    })?;

    // Reopen in parallel; print the zone maps (the listing's globalMap) and
    // read every zone back with collective I/O.
    let fs = pfs.clone();
    let reports = run_spmd(4, move |comm| {
        let mut h: DrxmpHandle<f64> =
            DrxmpHandle::open(comm, &fs, "fig1", DistSpec::block(vec![2, 2])).map_err(to_msg)?;
        let chunks = h.zone_chunks(comm.rank()).map_err(to_msg)?;
        let addrs: Vec<u64> = chunks.iter().map(|&(_, a)| a).collect();
        let (zone, data) = h.read_my_zone(Layout::C).map_err(to_msg)?.expect("zone");
        // Verify contents.
        for (pos, idx) in zone.iter().enumerate() {
            assert_eq!(data[pos], (idx[0] * 12 + idx[1]) as f64, "at {idx:?}");
        }
        let report = format!(
            "P{}: zone elements {:?}..{:?}, chunks {:?}",
            comm.rank(),
            zone.lo(),
            zone.hi(),
            addrs
        );
        h.close().map_err(to_msg)?;
        Ok(report)
    })?;

    println!("Figure 1 zone decomposition (paper's globalMap):");
    for r in &reports {
        println!("  {r}");
    }

    // The expected maps straight from the paper's listing.
    let expected = [
        "chunks [0, 1, 2, 3, 4, 5]",
        "chunks [6, 7, 8, 12, 13, 14]",
        "chunks [9, 10, 16, 17]",
        "chunks [11, 15, 18, 19]",
    ];
    for (r, e) in reports.iter().zip(expected) {
        assert!(r.ends_with(e), "{r} should end with {e}");
    }
    println!("zone maps match the paper's code listing ✓");
    println!(
        "PFS totals: {} requests, {} bytes",
        pfs.stats().total_requests(),
        pfs.stats().total_bytes()
    );
    Ok(())
}
