//! Climate-style workload: a `(time, lat, lon)` dataset that grows along
//! *two* dimensions over its lifetime — time steps are appended as the
//! simulation advances, and the spatial grid is later refined southward
//! (extending `lat`), which a netCDF-style record file cannot do without
//! rewriting everything.
//!
//! Run with: `cargo run --example climate_timeseries`

use drx::serial::DrxFile;
use drx::{Layout, Pfs, Region};

/// Synthetic temperature field: a zonal gradient plus a moving warm anomaly.
fn temperature(t: usize, lat: usize, lon: usize) -> f64 {
    let base = 15.0 - 0.4 * lat as f64;
    let anomaly_center = (t * 3) % 64;
    let d = lon as isize - anomaly_center as isize;
    base + 8.0 * (-((d * d) as f64) / 50.0).exp() + 0.01 * t as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pfs = Pfs::memory(4, 64 * 1024)?;

    // Start with 4 time steps on a 32×64 grid; chunk one time step into
    // 16×16 spatial tiles.
    let (lat0, lon0) = (32usize, 64usize);
    let mut ds: DrxFile<f64> =
        DrxFile::create(&pfs, "temperature", &[1, 16, 16], &[4, lat0, lon0])?;
    for t in 0..4 {
        write_time_step(&mut ds, t, lat0, lon0)?;
    }

    // The simulation advances: append time steps in batches, exactly like a
    // netCDF record dimension — cheap in any format.
    for batch in 0..3 {
        ds.extend(0, 4)?;
        let t0 = 4 + batch * 4;
        for t in t0..t0 + 4 {
            write_time_step(&mut ds, t, lat0, lon0)?;
        }
    }
    println!("after time appends: bounds = {:?}", ds.bounds());

    // Mid-life schema change: the grid is refined 16 rows southward. DRX
    // appends segments of chunks; nothing is rewritten.
    let before = pfs.stats().total_bytes();
    ds.extend(1, 16)?;
    let extension_bytes = pfs.stats().total_bytes() - before;
    println!(
        "extended lat 32 → 48: {extension_bytes} bytes of I/O (metadata only — no reorganization)"
    );
    let (t_bound, lat1, lon1) = (ds.bounds()[0], ds.bounds()[1], ds.bounds()[2]);
    // Backfill the new southern band for every existing time step.
    for t in 0..t_bound {
        let region = Region::new(vec![t, lat0, 0], vec![t + 1, lat1, lon1])?;
        let data: Vec<f64> = region.iter().map(|idx| temperature(idx[0], idx[1], idx[2])).collect();
        ds.write_region(&region, Layout::C, &data)?;
    }

    // Analysis 1: time series at one grid point — a strided read the chunked
    // layout serves without transposing the file.
    let series_region = Region::new(vec![0, 20, 30], vec![t_bound, 21, 31])?;
    let series = ds.read_region(&series_region, Layout::C)?;
    println!("temperature at (lat 20, lon 30) over {t_bound} steps:");
    println!(
        "  start {:.2}°C … end {:.2}°C (warming {:.2}°C)",
        series[0],
        series[t_bound - 1],
        series[t_bound - 1] - series[0]
    );
    assert!((series[t_bound - 1] - series[0]) > 0.0, "synthetic trend is warming");

    // Analysis 2: a regional snapshot in FORTRAN order (for a column-major
    // numerical kernel) from the refined band.
    let t = t_bound - 1;
    let snap_region = Region::new(vec![t, lat0, 16], vec![t + 1, lat0 + 8, 32])?;
    let snap = ds.read_region(&snap_region, Layout::Fortran)?;
    let mean: f64 = snap.iter().sum::<f64>() / snap.len() as f64;
    println!("mean temperature of the new southern band region at t={t}: {mean:.2}°C");
    // Spot-verify the value at the region corner through both paths.
    assert_eq!(snap[0], ds.get(&[t, lat0, 16])?);

    // Verify every stored value against the generator (full fidelity check).
    let all = ds.read_region(&Region::new(vec![0, 0, 0], vec![t_bound, lat1, lon1])?, Layout::C)?;
    let mut i = 0;
    for tt in 0..t_bound {
        for la in 0..lat1 {
            for lo in 0..lon1 {
                assert_eq!(all[i], temperature(tt, la, lo), "mismatch at ({tt},{la},{lo})");
                i += 1;
            }
        }
    }
    println!("all {} values verified against the generator", all.len());
    Ok(())
}

fn write_time_step(
    ds: &mut DrxFile<f64>,
    t: usize,
    lat: usize,
    lon: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let region = Region::new(vec![t, 0, 0], vec![t + 1, lat, lon])?;
    let data: Vec<f64> = region.iter().map(|idx| temperature(idx[0], idx[1], idx[2])).collect();
    ds.write_region(&region, Layout::C, &data)?;
    Ok(())
}
