//! Demo: several clients hammer one DRX array through `drx-server`.
//!
//! Spawns an in-process server over a memory-backed PFS, serves it on a
//! loopback TCP port, and runs a mix of in-process and TCP clients that
//! concurrently read, write and extend the same array. Afterwards it prints
//! the server-side statistics showing how the shared chunk cache and the
//! cross-session fetch coalescing cut the PFS request count.
//!
//! Run with: `cargo run --example concurrent_clients`

use drx::serial::DrxFile;
use drx::server::{serve, Client, Server, ServerConfig, TcpClient};
use drx::Pfs;
use std::thread;

const ROWS: u64 = 24;
const COLS: u64 = 16;

fn main() {
    let pfs = Pfs::memory(4, 4096).expect("pfs");
    DrxFile::<f64>::create(&pfs, "grid", &[4, 4], &[ROWS as usize, COLS as usize]).expect("create");

    let server = Server::new(pfs.clone(), ServerConfig { cache_chunks: 48 });
    let handle = serve(&server, "127.0.0.1:0", 2).expect("serve");
    let addr = handle.addr();
    println!("serving \"grid\" on {addr}");
    pfs.reset_stats();

    // Eight workers: even ones connect in-process, odd ones over TCP.
    // Each owns a band of three rows, writes it, reads the whole array a
    // few times (shared cache!), and one of them grows the column bound.
    let mut workers = Vec::new();
    for t in 0..8u64 {
        let server = server.clone();
        workers.push(thread::spawn(move || {
            if t % 2 == 0 {
                run(&mut Client::connect(&server), t);
            } else {
                run(&mut TcpClient::connect(addr).expect("connect"), t);
            }
        }));
    }
    for w in workers {
        w.join().expect("worker panicked");
    }

    // Report.
    let mut client = Client::connect(&server);
    let (h, info) = client.open("grid").expect("open");
    let stat = client.stat(h).expect("stat");
    println!("final bounds          : {:?}", info.bounds);
    println!("chunk shape           : {:?}", info.chunk_shape);
    println!("cache hits / misses   : {} / {}", stat.global_cache.hits, stat.global_cache.misses);
    println!("coalesced batches     : {}", stat.coalesced_batches);
    println!("pfs requests          : {}", stat.pfs_requests);
    println!("lock waits            : {}", stat.lock_waits);
    let naive = stat.global_cache.hits + stat.global_cache.misses;
    println!("(naive per-chunk I/O would have issued ~{naive} requests)");
    client.close(h).expect("close");
    handle.shutdown().expect("shutdown");
}

fn run<T: drx::server::Transport>(client: &mut drx::server::Conn<T>, t: u64) {
    let (h, _) = client.open("grid").expect("open");
    let r0 = t * 3;
    let band = vec![(t + 1) as f64; (3 * COLS) as usize];
    client.write_region_from::<f64>(h, &[r0, 0], &[r0 + 3, COLS], &band).expect("write");
    for _ in 0..4 {
        let all = client.read_region_as::<f64>(h, &[0, 0], &[ROWS, COLS]).expect("read");
        assert_eq!(all.len(), (ROWS * COLS) as usize);
    }
    if t == 3 {
        let bounds = client.extend(h, 1, 4).expect("extend");
        println!("worker {t} extended columns to {}", bounds[1]);
    }
    client.close(h).expect("close");
}
