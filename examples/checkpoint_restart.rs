//! Checkpoint/restart with a growing state array: an iterative solver
//! appends one state snapshot per checkpoint to a `(step, cell)` extendible
//! array on real disk, "crashes", and a new process restarts from the last
//! complete snapshot. Extending the step dimension is an append — no
//! rewriting of earlier checkpoints — and corrupted metadata is detected at
//! restart rather than silently mis-addressing.
//!
//! Run with: `cargo run --example checkpoint_restart`

use drx::serial::DrxFile;
use drx::{Backing, CostModel, Layout, Pfs, PfsConfig, Region};

const CELLS: usize = 256;
const CHECKPOINT_EVERY: usize = 10;

/// One explicit diffusion step on a ring.
fn step(state: &mut [f64]) {
    let n = state.len();
    let prev = state.to_vec();
    for i in 0..n {
        state[i] = 0.5 * prev[i] + 0.25 * prev[(i + n - 1) % n] + 0.25 * prev[(i + 1) % n];
    }
}

fn open_pfs(dir: &std::path::Path) -> Result<Pfs, Box<dyn std::error::Error>> {
    Ok(Pfs::new(PfsConfig {
        n_servers: 2,
        stripe_size: 4096,
        cost: CostModel::flat(1000, 1.0),
        backing: Backing::Disk(dir.to_path_buf()),
        ..PfsConfig::default()
    })?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("drx-checkpoint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    // ---- Phase 1: run 35 steps, checkpointing every 10 — then "crash". ----
    let written_checkpoints;
    {
        let pfs = open_pfs(&dir)?;
        // One snapshot row initially (the initial condition).
        let mut ckpt: DrxFile<f64> = DrxFile::create(&pfs, "state", &[1, 64], &[1, CELLS])?;
        let mut state: Vec<f64> =
            (0..CELLS).map(|i| if i == CELLS / 2 { 1000.0 } else { 0.0 }).collect();
        let snap0 = Region::new(vec![0, 0], vec![1, CELLS])?;
        ckpt.write_region(&snap0, Layout::C, &state)?;

        let mut snapshots = 1;
        for s in 1..=35 {
            step(&mut state);
            if s % CHECKPOINT_EVERY == 0 {
                ckpt.extend(0, 1)?; // append one snapshot row
                let row = Region::new(vec![snapshots, 0], vec![snapshots + 1, CELLS])?;
                ckpt.write_region(&row, Layout::C, &state)?;
                snapshots += 1;
                println!("checkpointed step {s} (snapshot {})", snapshots - 1);
            }
        }
        written_checkpoints = snapshots;
        // Process "crashes" here: ckpt dropped without any special shutdown.
    }

    // ---- Phase 2: a fresh process restarts from disk. ----
    {
        let pfs = open_pfs(&dir)?;
        // Fresh PFS namespaces don't know the logical lengths; recover them
        // the same way drxtool does: .xmd is dense on disk, .xta length
        // comes from the decoded metadata.
        let mut xmd_len = 0u64;
        for s in 0..2 {
            let p = dir.join(format!("server{s}")).join("state.xmd");
            if p.exists() {
                xmd_len += std::fs::metadata(&p)?.len();
            }
        }
        let xmd = pfs.open_or_create("state.xmd")?;
        xmd.set_len(xmd_len)?;
        let meta = drx::ArrayMeta::decode(&xmd.read_vec(0, xmd_len as usize)?)?;
        let xta = pfs.open_or_create("state.xta")?;
        xta.set_len(meta.payload_bytes())?;

        let ckpt: DrxFile<f64> = DrxFile::open(&pfs, "state")?;
        let snapshots = ckpt.bounds()[0];
        assert_eq!(snapshots, written_checkpoints, "all checkpoints survived the crash");
        println!("restart found {snapshots} snapshots; resuming from the last one");

        // Mass conservation across every snapshot (diffusion preserves sum).
        for s in 0..snapshots {
            let row = Region::new(vec![s, 0], vec![s + 1, CELLS])?;
            let data = ckpt.read_region(&row, Layout::C)?;
            let mass: f64 = data.iter().sum();
            assert!((mass - 1000.0).abs() < 1e-6, "snapshot {s} lost mass: {mass}");
        }
        println!("mass conserved in all snapshots ✓");

        // Resume: replay from the last snapshot and verify determinism
        // against an uninterrupted run.
        let last = Region::new(vec![snapshots - 1, 0], vec![snapshots, CELLS])?;
        let mut resumed = ckpt.read_region(&last, Layout::C)?;
        for _ in 31..=35 {
            step(&mut resumed);
        }
        let mut reference: Vec<f64> =
            (0..CELLS).map(|i| if i == CELLS / 2 { 1000.0 } else { 0.0 }).collect();
        for _ in 1..=35 {
            step(&mut reference);
        }
        let max_err =
            resumed.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(max_err < 1e-9, "resumed trajectory diverged: {max_err}");
        println!("resumed trajectory matches the uninterrupted run (max err {max_err:.2e})");
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
