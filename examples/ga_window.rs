//! Global-Array-style shared access: four ranks load their zones of a
//! distributed 2-D array into RMA windows, then read/update arbitrary
//! elements regardless of ownership — the paper's §II-A programming model
//! ("as if each process has access to the entire principal array").
//!
//! The workload builds a parallel 2-D histogram with atomic accumulates,
//! then writes the array back to the file collectively.
//!
//! Run with: `cargo run --example ga_window`

use drx::parallel::{to_msg, DistSpec, DrxmpHandle, GaView};
use drx::serial::DrxFile;
use drx::{run_spmd, Layout, Pfs};

const SIDE: usize = 64;
const SAMPLES_PER_RANK: usize = 4096;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pfs = Pfs::memory(4, 16 * 1024)?;
    // An empty histogram array.
    {
        let _h: DrxFile<f64> = DrxFile::create(&pfs, "hist", &[16, 16], &[SIDE, SIDE])?;
    }

    let fs = pfs.clone();
    let local_remote = run_spmd(4, move |comm| {
        let mut h: DrxmpHandle<f64> =
            DrxmpHandle::open(comm, &fs, "hist", DistSpec::block(vec![2, 2])).map_err(to_msg)?;
        let ga = GaView::load(&mut h).map_err(to_msg)?;
        ga.fence().map_err(to_msg)?;

        // Each rank scatters samples over the whole array (deterministic
        // per-rank stream) and counts how many landed in remote zones.
        let mut seed = 0x1234_5678u64 ^ (comm.rank() as u64) << 32;
        let mut local = 0usize;
        let mut remote = 0usize;
        for _ in 0..SAMPLES_PER_RANK {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (seed >> 17) as usize % SIDE;
            let j = (seed >> 41) as usize % SIDE;
            if ga.is_local(&[i, j]).map_err(to_msg)? {
                local += 1;
            } else {
                remote += 1;
            }
            ga.accumulate(&[i, j], 1.0).map_err(to_msg)?;
        }
        ga.fence().map_err(to_msg)?;
        // Persist the histogram collectively.
        ga.sync_to_file(&mut h).map_err(to_msg)?;
        h.close().map_err(to_msg)?;
        Ok((local, remote))
    })?;

    for (rank, (local, remote)) in local_remote.iter().enumerate() {
        println!("rank {rank}: {local} local updates, {remote} remote updates");
    }

    // Serial check: the histogram total equals the sample count.
    let hist: DrxFile<f64> = DrxFile::open(&pfs, "hist")?;
    let full = hist.read_full(Layout::C)?;
    let total: f64 = full.iter().sum();
    let expected = (4 * SAMPLES_PER_RANK) as f64;
    println!("histogram total = {total} (expected {expected})");
    assert_eq!(total, expected, "atomic accumulates must not lose updates");
    let max = full.iter().cloned().fold(0.0f64, f64::max);
    println!("hottest bin count = {max}");
    Ok(())
}
