//! A line-for-line port of the paper's §IV-B code listing: four processes
//! collectively read the chunks of their Figure-1 zones through irregular
//! indexed file views (`MPI_Type_contiguous` → `MPI_Type_indexed` →
//! `MPI_File_set_view` → `MPI_File_read_all`), placing chunks at the
//! `inMemoryMap` positions of their buffers.
//!
//! The original hardcodes the maps "statically" — so does this port, using
//! the exact arrays from the paper. The output mirrors the listing's
//! printf format.
//!
//! Run with: `cargo run --example paper_listing`

use drx::{run_spmd, Datatype, MsgFile, Pfs};

const CHUNK_SIZE: usize = 6; // doubles per chunk (2×3)
const NDIMS: usize = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _ = NDIMS;
    // The listing reads "/mnt/pvfs2/chunkedArray4.dat"; ours lives on the
    // simulated PVFS2.
    let pfs = Pfs::memory(4, 16 * 1024)?;
    let filename = "chunkedArray4.dat";

    // Seed the file: 20 chunks of 6 doubles; element value = chunk address
    // + position/10, so placement errors are visible.
    {
        let f = pfs.create(filename)?;
        let mut bytes = Vec::new();
        for chunk in 0..20 {
            for pos in 0..CHUNK_SIZE {
                let v: f64 = chunk as f64 + pos as f64 / 10.0;
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        f.write_at(0, &bytes)?;
    }

    // The listing's static tables (negative entries are not used).
    let chunk_distrib: [usize; 4] = [6, 6, 4, 4];
    let global_map: [&[usize]; 4] =
        [&[0, 1, 2, 3, 4, 5], &[6, 7, 8, 12, 13, 14], &[9, 10, 16, 17], &[11, 15, 18, 19]];
    let in_memory_map: [&[usize]; 4] =
        [&[0, 1, 2, 3, 4, 5], &[0, 2, 4, 1, 3, 5], &[0, 1, 2, 3], &[0, 1, 2, 3]];

    /* This code for 2 x 2 process decomp. */
    let outputs = run_spmd(4, move |comm| {
        let my_rank = comm.rank();
        let no_of_chunks = chunk_distrib[my_rank];
        let map = &global_map[my_rank][..no_of_chunks];
        let inmemmap = &in_memory_map[my_rank][..no_of_chunks];
        let blocklens = vec![1usize; no_of_chunks];

        let mut lines = Vec::new();
        for j in 0..no_of_chunks {
            lines.push(format!(
                "Rank {my_rank}: map[{j}] = {}, inmemmap[{j}] = {}",
                map[j], inmemmap[j]
            ));
        }

        // MPI_Type_contiguous(ChunkSize, MPI_DOUBLE, &chunk);
        let chunk = Datatype::contiguous((CHUNK_SIZE * 8) as u64);
        // MPI_Type_indexed(noOfChunks, blocklens, map, chunk, &filetype);
        let filetype = Datatype::indexed(&blocklens, map, &chunk)?;
        // MPI_File_open(MPI_COMM_WORLD, filename, MPI_MODE_RDONLY, …);
        let mut fh = MsgFile::open(comm, &pfs, filename, false)?;
        // MPI_File_set_view(fh, disp, chunk, filetype, "native", …);
        fh.set_view(0, Some(filetype));
        // MPI_File_read_all(fh, memBuf, 1, memtype, &status);
        let mut file_order = vec![0u8; no_of_chunks * CHUNK_SIZE * 8];
        fh.read_all(0, &mut file_order)?;
        // Apply the memtype scatter: chunk j of the file view lands at
        // buffer slot inmemmap[j].
        let mut mem_buf = vec![-1.0f64; no_of_chunks * CHUNK_SIZE];
        for (j, slot) in inmemmap.iter().enumerate() {
            for pos in 0..CHUNK_SIZE {
                let b = &file_order[(j * CHUNK_SIZE + pos) * 8..][..8];
                mem_buf[slot * CHUNK_SIZE + pos] = f64::from_le_bytes(b.try_into().unwrap());
            }
        }
        let count = no_of_chunks; // MPI_Get_count(&status, chunk, &count);
        lines.push(format!("Rank {my_rank}: Number read = {count}"));
        if my_rank == 3 {
            // The listing dumps rank 3's buffer.
            for (j, v) in mem_buf.iter().enumerate() {
                lines.push(format!("Rank {my_rank}: {j}->val = {v:.6}"));
            }
        }
        // Verify: slot s of rank r must hold the chunk whose inmemmap == s.
        for (j, &slot) in inmemmap.iter().enumerate() {
            let expect = map[j] as f64;
            assert_eq!(mem_buf[slot * CHUNK_SIZE], expect, "rank {my_rank} slot {slot}");
        }
        Ok(lines)
    })?;

    for lines in outputs {
        for line in lines {
            println!("{line}");
        }
    }
    println!("\nall four zone buffers hold their globalMap chunks at their inMemoryMap slots ✓");
    Ok(())
}
