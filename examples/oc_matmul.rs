//! Out-of-core blocked matrix multiply, Global-Array style: `C = A × B`
//! where A, B and C are disk-resident DRX arrays. Four ranks each own a
//! BLOCK zone of C; they stream panels of A and B from the parallel file
//! system (chunk-granular reads through `F*`), accumulate locally, and
//! write their C zones back with collective two-phase I/O.
//!
//! The same pattern then survives a *schema change*: B gains extra columns
//! (extending a non-record dimension — the operation the paper makes cheap),
//! C is extended to match, and only the new column-panel of C is computed.
//!
//! Run with: `cargo run --example oc_matmul` (use `--release` for speed)

use drx::parallel::{to_msg, DistSpec, DrxmpHandle};
use drx::serial::DrxFile;
use drx::{run_spmd, Layout, Pfs, Region};

// Dimensions chosen so every rank's band is chunk-aligned: concurrent
// writers must not share partial chunks (the paper partitions "always along
// chunk boundaries" for exactly this reason).
const M: usize = 64;
const K: usize = 40;
const N: usize = 32;
const PANEL: usize = 8;
const CHUNK: usize = 8;

fn a_val(i: usize, k: usize) -> f64 {
    ((i * 7 + k * 3) % 11) as f64 - 5.0
}

fn b_val(k: usize, j: usize) -> f64 {
    ((k * 5 + j * 2) % 13) as f64 - 6.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pfs = Pfs::memory(4, 16 * 1024)?;

    // Producer: write A (M×K) and B (K×N) serially.
    {
        let mut a: DrxFile<f64> = DrxFile::create(&pfs, "A", &[CHUNK, CHUNK], &[M, K])?;
        a.fill_with(|idx| a_val(idx[0], idx[1]))?;
        let mut b: DrxFile<f64> = DrxFile::create(&pfs, "B", &[CHUNK, CHUNK], &[K, N])?;
        b.fill_with(|idx| b_val(idx[0], idx[1]))?;
        let _c: DrxFile<f64> = DrxFile::create(&pfs, "C", &[CHUNK, CHUNK], &[M, N])?;
    }

    // Parallel multiply: each rank owns a zone of C.
    let fs = pfs.clone();
    run_spmd(4, move |comm| {
        let dist = DistSpec::block(vec![2, 2]);
        let mut a: DrxmpHandle<f64> =
            DrxmpHandle::open(comm, &fs, "A", dist.clone()).map_err(to_msg)?;
        let mut b: DrxmpHandle<f64> =
            DrxmpHandle::open(comm, &fs, "B", dist.clone()).map_err(to_msg)?;
        let mut c: DrxmpHandle<f64> = DrxmpHandle::open(comm, &fs, "C", dist).map_err(to_msg)?;
        let zone = c.my_zone().expect("every rank owns a C zone");
        let (ri, rj) = (zone.lo()[0], zone.lo()[1]);
        let (mi, mj) = (zone.extents()[0], zone.extents()[1]);
        let mut acc = vec![0.0f64; mi * mj];
        // Panel loop over the contraction dimension.
        let mut kk = 0;
        while kk < K {
            let kw = PANEL.min(K - kk);
            let a_panel = a
                .read_region(&Region::new(vec![ri, kk], vec![ri + mi, kk + kw]).unwrap(), Layout::C)
                .map_err(to_msg)?;
            let b_panel = b
                .read_region(&Region::new(vec![kk, rj], vec![kk + kw, rj + mj]).unwrap(), Layout::C)
                .map_err(to_msg)?;
            for i in 0..mi {
                for kx in 0..kw {
                    let aik = a_panel[i * kw + kx];
                    for j in 0..mj {
                        acc[i * mj + j] += aik * b_panel[kx * mj + j];
                    }
                }
            }
            kk += kw;
        }
        c.write_region_all(Some((&zone, &acc)), Layout::C).map_err(to_msg)?;
        a.close().map_err(to_msg)?;
        b.close().map_err(to_msg)?;
        c.close().map_err(to_msg)?;
        Ok(())
    })?;

    // Verify against a straightforward serial product.
    let c: DrxFile<f64> = DrxFile::open(&pfs, "C")?;
    for i in (0..M).step_by(7) {
        for j in (0..N).step_by(5) {
            let want: f64 = (0..K).map(|k| a_val(i, k) * b_val(k, j)).sum();
            assert_eq!(c.get(&[i, j])?, want, "C[{i},{j}]");
        }
    }
    println!("parallel out-of-core product verified on a {M}×{K} · {K}×{N} multiply");
    drop(c);

    // Schema change: B gains 16 extra columns; extend C to match and compute
    // ONLY the new column-panel (no reorganization anywhere).
    {
        let mut b: DrxFile<f64> = DrxFile::open(&pfs, "B")?;
        b.extend(1, 16)?;
        let region = Region::new(vec![0, N], vec![K, N + 16])?;
        let data: Vec<f64> = region.iter().map(|idx| b_val(idx[0], idx[1])).collect();
        b.write_region(&region, Layout::C, &data)?;
        let mut c: DrxFile<f64> = DrxFile::open(&pfs, "C")?;
        c.extend(1, 16)?;
    }
    let fs = pfs.clone();
    run_spmd(4, move |comm| {
        let dist = DistSpec::block(vec![4, 1]);
        let mut a: DrxmpHandle<f64> =
            DrxmpHandle::open(comm, &fs, "A", dist.clone()).map_err(to_msg)?;
        let mut b: DrxmpHandle<f64> =
            DrxmpHandle::open(comm, &fs, "B", dist.clone()).map_err(to_msg)?;
        let mut c: DrxmpHandle<f64> = DrxmpHandle::open(comm, &fs, "C", dist).map_err(to_msg)?;
        // Each rank computes its row band of the NEW columns only.
        let rows = M / comm.size();
        let r0 = comm.rank() * rows;
        let new_cols = Region::new(vec![r0, N], vec![r0 + rows, N + 16]).unwrap();
        let a_band = a
            .read_region(&Region::new(vec![r0, 0], vec![r0 + rows, K]).unwrap(), Layout::C)
            .map_err(to_msg)?;
        let b_new = b
            .read_region(&Region::new(vec![0, N], vec![K, N + 16]).unwrap(), Layout::C)
            .map_err(to_msg)?;
        let mut acc = vec![0.0f64; rows * 16];
        for i in 0..rows {
            for k in 0..K {
                let aik = a_band[i * K + k];
                for j in 0..16 {
                    acc[i * 16 + j] += aik * b_new[k * 16 + j];
                }
            }
        }
        c.write_region_all(Some((&new_cols, &acc)), Layout::C).map_err(to_msg)?;
        a.close().map_err(to_msg)?;
        b.close().map_err(to_msg)?;
        c.close().map_err(to_msg)?;
        Ok(())
    })?;

    let c: DrxFile<f64> = DrxFile::open(&pfs, "C")?;
    assert_eq!(c.bounds(), &[M, N + 16]);
    for i in (0..M).step_by(11) {
        for j in (0..N + 16).step_by(9) {
            let want: f64 = (0..K).map(|k| a_val(i, k) * b_val(k, j)).sum();
            assert_eq!(c.get(&[i, j])?, want, "C[{i},{j}] after extension");
        }
    }
    println!("B and C extended by 16 columns; only the new panel was computed — old C intact");
    println!(
        "PFS totals: {} requests, {:.1} KiB moved",
        pfs.stats().total_requests(),
        pfs.stats().total_bytes() as f64 / 1024.0
    );
    Ok(())
}
