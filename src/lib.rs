//! # drx — out-of-core dense extendible arrays with parallel access
//!
//! Facade crate re-exporting the whole DRX / DRX-MP stack (a reproduction of
//! Otoo & Rotem, *"Parallel Access of Out-Of-Core Dense Extendible Arrays"*,
//! IEEE CLUSTER 2007):
//!
//! * [`core`](drx_core) — the axial-vector mapping function `F*` and its
//!   inverse, chunking, metadata (`drx-core`);
//! * [`pfs`](drx_pfs) — a striped parallel file system simulator with a
//!   deterministic cost model (`drx-pfs`);
//! * [`msg`](drx_msg) — an MPI-like SPMD runtime: collectives, derived
//!   datatypes, RMA windows, two-phase collective I/O (`drx-msg`);
//! * [`serial`] / [`parallel`] — the DRX and DRX-MP libraries (`drx-mp`);
//! * [`baselines`] — row-major, HDF5-like (B-tree) and netCDF-like
//!   comparators (`drx-baselines`).
//!
//! ```
//! use drx::serial::DrxFile;
//! use drx::{Layout, Pfs, Region};
//!
//! let pfs = Pfs::memory(4, 1024).unwrap();
//! let mut a: DrxFile<f64> = DrxFile::create(&pfs, "a", &[2, 2], &[4, 4]).unwrap();
//! a.set(&[3, 3], 1.5).unwrap();
//! a.extend(1, 4).unwrap(); // grow a non-primary dimension: append-only
//! assert_eq!(a.get(&[3, 3]).unwrap(), 1.5);
//! let region = Region::new(vec![2, 2], vec![4, 6]).unwrap();
//! let data = a.read_region(&region, Layout::Fortran).unwrap();
//! assert_eq!(data.len(), 8);
//! ```

pub use drx_core::{
    alloc, axial, chunk, dtype, index, mapping, meta, order, ArrayMeta, AxialRecord, AxialVector,
    Chunking, Complex64, DType, DrxError, Element, ExtendOutcome, ExtendibleArray, ExtendibleShape,
    InitialLayout, Layout, Region, SegmentRef, MAX_RANK,
};

pub use drx_pfs::{
    fault, Backing, CostModel, Pfs, PfsConfig, PfsError, PfsFile, PfsStats, RetryPolicy, StripeMap,
};

pub use drx_msg::{run_spmd, Comm, Datatype, MsgError, MsgFile, ReduceOp, Window};

/// The serial DRX library (one process, `.xmd` + `.xta` file pair).
pub mod serial {
    pub use drx_mp::serial::{DrxFile, XMD_SUFFIX, XTA_SUFFIX};
}

/// The parallel DRX-MP library (zones, collective I/O, GA-style access).
pub mod parallel {
    pub use drx_mp::error::to_msg;
    pub use drx_mp::{
        api, drxmp_close, drxmp_init, drxmp_open, drxmp_read, drxmp_read_all, drxmp_write,
        drxmp_write_all, CachedDrxFile, ChunkPool, DistSpec, DrxmpContext, DrxmpHandle,
        DrxmpStatus, GaView, MemHandle, MpError, PoolStats, PrefetchOutcome,
    };
}

/// The multi-client array service (sessions, chunk-range locks, shared
/// cache, in-process and TCP transports).
pub mod server {
    pub use drx_server::{
        proto, serve, serve_with, ArrayInfo, Client, Conn, ErrorCode, LockMode, RangeGuard,
        RangeLockManager, Request, Response, ServeConfig, ServeHandle, Server, ServerConfig,
        ServerError, SharedChunkCache, StatReply, TcpClient, Transport,
    };
}

/// Baseline array-file formats used by the evaluation.
pub mod baselines {
    pub use drx_baselines::{
        Btree, BtreeStats, DraLikeFile, ExtendCost, Hdf5LikeFile, NetcdfLikeFile, RowMajorFile,
    };
}
