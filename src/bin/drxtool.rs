//! `drxtool` — inspect and manipulate DRX extendible array files on disk.
//!
//! Arrays live as `<name>.xmd` + `<name>.xta` pairs inside a directory that
//! backs a disk-based PFS (stripes under `server*/`). Commands:
//!
//! ```text
//! drxtool create <dir> <name> --dtype f64 --chunk 2x3 --bounds 10x12 \
//!         [--servers N] [--stripe BYTES] [--layout rowmajor|shell]
//! drxtool info   <dir> <name>        # bounds, chunking, payload size
//! drxtool axial  <dir> <name>        # dump the axial vectors (Figure-3b style)
//! drxtool extend <dir> <name> --dim D --by N
//! drxtool get    <dir> <name> --index 9x7
//! drxtool set    <dir> <name> --index 9x7 --value 3.5
//! drxtool dump   <dir> <name> [--lo 0x0 --hi 4x4]   # print a region (2-D: as a grid)
//! drxtool serve  <dir> --addr 127.0.0.1:7421 [--threads N] [--cache CHUNKS]
//! drxtool client <addr> <info|get|set> <name> [--index 9x7] [--value 3.5]
//! ```
//!
//! `serve` exposes every array in the directory over the drx-server TCP
//! protocol; `client` talks to such a server.
//!
//! Any command that opens the PFS accepts `--fault-script seed:N` (generate
//! a deterministic schedule from seed `N`) or `--fault-script FILE` (replay
//! a saved schedule). The armed schedule is echoed to stderr so every run
//! can be replayed exactly.
//!
//! The tool stores the PFS geometry in `<dir>/pfs.conf` so later invocations
//! reopen the same striping.

use drx::serial::DrxFile;
use drx::server::{Server, ServerConfig, TcpClient};
use drx::{fault, Backing, CostModel, DType, Pfs, PfsConfig};
use std::path::{Path, PathBuf};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: drxtool <create|info|axial|extend|get|set|dump> <dir> <name> [options]\n\
         \x20      drxtool serve <dir> --addr HOST:PORT [--threads N] [--cache CHUNKS]\n\
         \x20      drxtool client <addr> <info|get|set> <name> [options]\n\
         options: --dtype f64|i64  --chunk AxB[xC…]  --bounds AxB[xC…]\n\
                  --servers N  --stripe BYTES  --dim D  --by N\n\
                  --index AxB[xC…]  --value V  --lo AxB[xC…]  --hi AxB[xC…]\n\
                  --addr HOST:PORT  --threads N  --cache CHUNKS\n\
                  --fault-script seed:N|FILE   (deterministic fault injection)"
    );
    exit(2);
}

struct Opts {
    dtype: String,
    layout: String,
    chunk: Vec<usize>,
    bounds: Vec<usize>,
    servers: usize,
    stripe: u64,
    dim: usize,
    by: usize,
    index: Vec<usize>,
    value: f64,
    lo: Vec<usize>,
    hi: Vec<usize>,
    addr: String,
    threads: usize,
    cache: usize,
    fault_script: String,
}

fn parse_dims(s: &str) -> Vec<usize> {
    s.split(['x', ',']).map(|p| p.parse().unwrap_or_else(|_| usage())).collect()
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        dtype: "f64".into(),
        layout: "rowmajor".into(),
        chunk: vec![],
        bounds: vec![],
        servers: 4,
        stripe: 64 * 1024,
        dim: 0,
        by: 0,
        index: vec![],
        value: 0.0,
        lo: vec![],
        hi: vec![],
        addr: String::new(),
        threads: 4,
        cache: 64,
        fault_script: String::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        let val = args.get(i + 1).unwrap_or_else(|| usage()).clone();
        match key.as_str() {
            "--dtype" => o.dtype = val,
            "--layout" => o.layout = val,
            "--chunk" => o.chunk = parse_dims(&val),
            "--bounds" => o.bounds = parse_dims(&val),
            "--servers" => o.servers = val.parse().unwrap_or_else(|_| usage()),
            "--stripe" => o.stripe = val.parse().unwrap_or_else(|_| usage()),
            "--dim" => o.dim = val.parse().unwrap_or_else(|_| usage()),
            "--by" => o.by = val.parse().unwrap_or_else(|_| usage()),
            "--index" => o.index = parse_dims(&val),
            "--value" => o.value = val.parse().unwrap_or_else(|_| usage()),
            "--lo" => o.lo = parse_dims(&val),
            "--hi" => o.hi = parse_dims(&val),
            "--addr" => o.addr = val,
            "--threads" => o.threads = val.parse().unwrap_or_else(|_| usage()),
            "--cache" => o.cache = val.parse().unwrap_or_else(|_| usage()),
            "--fault-script" => o.fault_script = val,
            _ => usage(),
        }
        i += 2;
    }
    o
}

/// Persist/recover the PFS geometry of a directory.
fn pfs_for(dir: &Path, opts: &Opts, create: bool) -> Result<Pfs, Box<dyn std::error::Error>> {
    let conf = dir.join("pfs.conf");
    let (servers, stripe) = if conf.exists() {
        let text = std::fs::read_to_string(&conf)?;
        let mut parts = text.split_whitespace();
        let s: usize = parts.next().ok_or("bad pfs.conf")?.parse()?;
        let st: u64 = parts.next().ok_or("bad pfs.conf")?.parse()?;
        (s, st)
    } else if create {
        std::fs::create_dir_all(dir)?;
        std::fs::write(&conf, format!("{} {}\n", opts.servers, opts.stripe))?;
        (opts.servers, opts.stripe)
    } else {
        return Err(
            format!("{} is not a drxtool directory (missing pfs.conf)", dir.display()).into()
        );
    };
    let pfs = Pfs::new(PfsConfig {
        n_servers: servers,
        stripe_size: stripe,
        cost: CostModel::default(),
        backing: Backing::Disk(dir.to_path_buf()),
        injector: injector_for(opts, servers)?,
        ..PfsConfig::default()
    })?;
    Ok(pfs)
}

/// Build the fault injector requested by `--fault-script`, if any. The
/// armed schedule is echoed to stderr in its replayable text form, so a
/// failure seen under `seed:N` can be reproduced from the printed script
/// alone.
fn injector_for(
    opts: &Opts,
    servers: usize,
) -> Result<Option<std::sync::Arc<fault::Injector>>, Box<dyn std::error::Error>> {
    if opts.fault_script.is_empty() {
        return Ok(None);
    }
    let script = if let Some(seed) = opts.fault_script.strip_prefix("seed:") {
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed in '{}'", opts.fault_script))?;
        fault::Script::from_seed(seed, 8, servers)
    } else {
        let text = std::fs::read_to_string(&opts.fault_script)?;
        fault::Script::parse(&text).map_err(|e| format!("bad fault script: {e}"))?
    };
    eprintln!("drxtool: fault injection armed; replayable schedule:");
    eprint!("{script}");
    Ok(Some(std::sync::Arc::new(fault::Injector::new(script))))
}

/// Register the file pair with the (fresh) PFS namespace: the in-memory
/// file table does not survive process restarts, so reopening means
/// re-adopting the on-disk stripes under the same names.
///
/// Logical lengths are recovered as follows: the `.xmd` file is always
/// written densely, so summing its server-local stripe files gives its
/// exact length; the `.xta` payload may be sparse (unwritten chunks), but
/// its true length is recorded in the decoded metadata.
fn adopt(pfs: &Pfs, dir: &Path, name: &str) -> Result<drx::ArrayMeta, Box<dyn std::error::Error>> {
    let sum_server_files = |full: &str| -> Result<u64, Box<dyn std::error::Error>> {
        let mut len = 0u64;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir()
                && path.file_name().is_some_and(|n| n.to_string_lossy().starts_with("server"))
            {
                let stripe_file = path.join(full);
                if stripe_file.exists() {
                    len += std::fs::metadata(&stripe_file)?.len();
                }
            }
        }
        Ok(len)
    };
    let xmd_name = format!("{name}.xmd");
    // Existence check BEFORE open_or_create: opening first would create an
    // empty stray `.xmd` stream for the misspelled name, which the
    // directory scan would then pick up and `serve` would refuse to adopt.
    let xmd_len = sum_server_files(&xmd_name)?;
    if xmd_len == 0 {
        return Err(format!("array '{name}' not found in this directory").into());
    }
    let xmd = pfs.open_or_create(&xmd_name)?;
    if xmd.len() < xmd_len {
        xmd.set_len(xmd_len)?;
    }
    let meta = drx::ArrayMeta::decode(&xmd.read_vec(0, xmd_len as usize)?)?;
    let xta = pfs.open_or_create(&format!("{name}.xta"))?;
    if xta.len() < meta.payload_bytes() {
        xta.set_len(meta.payload_bytes())?;
    }
    Ok(meta)
}

fn dims(v: &[usize]) -> String {
    v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join("×")
}

/// List the array base names stored in a drxtool directory by scanning any
/// one server's stripe files for `.xmd` entries.
fn array_names(dir: &Path) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let mut names = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if !(path.is_dir()
            && path.file_name().is_some_and(|n| n.to_string_lossy().starts_with("server")))
        {
            continue;
        }
        for f in std::fs::read_dir(&path)? {
            let f = f?;
            let name = f.file_name().to_string_lossy().into_owned();
            if let Some(base) = name.strip_suffix(".xmd") {
                // Zero-length strays (left by older builds opening before
                // checking existence) are not arrays.
                if f.metadata()?.len() > 0 {
                    names.insert(base.to_string());
                }
            }
        }
    }
    Ok(names.into_iter().collect())
}

/// `drxtool serve <dir> --addr HOST:PORT [--threads N] [--cache CHUNKS]`
fn run_serve(dir: &Path, opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    if opts.addr.is_empty() {
        return Err("serve requires --addr HOST:PORT".into());
    }
    let pfs = pfs_for(dir, opts, false)?;
    let names = array_names(dir)?;
    if names.is_empty() {
        return Err(format!("no arrays found in {}", dir.display()).into());
    }
    for name in &names {
        adopt(&pfs, dir, name)?;
    }
    let server = Server::new(pfs, ServerConfig { cache_chunks: opts.cache });
    let handle = drx::server::serve(&server, opts.addr.as_str(), opts.threads)
        .map_err(|e| format!("cannot serve on {}: {e}", opts.addr))?;
    println!("serving {} array(s) [{}] on {}", names.len(), names.join(", "), handle.addr());
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

/// `drxtool client <addr> <info|get|set> <name> [--index …] [--value …]`
fn run_client(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if args.len() < 3 {
        usage();
    }
    let addr = args[0].as_str();
    let sub = args[1].as_str();
    let name = args[2].as_str();
    let opts = parse_opts(&args[3..]);
    let mut client =
        TcpClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let (handle, info) = client.open(name)?;
    let u64_index = |idx: &[usize]| -> (Vec<u64>, Vec<u64>) {
        let lo: Vec<u64> = idx.iter().map(|&i| i as u64).collect();
        let hi: Vec<u64> = idx.iter().map(|&i| i as u64 + 1).collect();
        (lo, hi)
    };
    match sub {
        "info" => {
            let s = client.stat(handle)?;
            println!("array      : {name}");
            println!("dtype      : {}", DType::from_code(s.dtype)?.name());
            println!(
                "bounds     : {}",
                s.bounds.iter().map(|b| b.to_string()).collect::<Vec<_>>().join("×")
            );
            println!(
                "chunk shape: {}",
                s.chunk_shape.iter().map(|b| b.to_string()).collect::<Vec<_>>().join("×")
            );
            println!("chunks     : {}", s.total_chunks);
            println!("payload    : {} bytes", s.payload_bytes);
            println!(
                "cache      : {} hits / {} misses (global)",
                s.global_cache.hits, s.global_cache.misses
            );
            println!("pfs        : {} requests, {} bytes", s.pfs_requests, s.pfs_bytes);
            println!("batches    : {} coalesced, {} lock waits", s.coalesced_batches, s.lock_waits);
        }
        "get" => {
            if opts.index.is_empty() {
                usage();
            }
            let (lo, hi) = u64_index(&opts.index);
            match DType::from_code(info.dtype)? {
                DType::Float64 => {
                    println!("{}", client.read_region_as::<f64>(handle, &lo, &hi)?[0])
                }
                DType::Int64 => println!("{}", client.read_region_as::<i64>(handle, &lo, &hi)?[0]),
                other => {
                    return Err(
                        format!("client supports f64/i64 arrays, found {}", other.name()).into()
                    )
                }
            }
        }
        "set" => {
            if opts.index.is_empty() {
                usage();
            }
            let (lo, hi) = u64_index(&opts.index);
            match DType::from_code(info.dtype)? {
                DType::Float64 => {
                    client.write_region_from::<f64>(handle, &lo, &hi, &[opts.value])?
                }
                DType::Int64 => {
                    client.write_region_from::<i64>(handle, &lo, &hi, &[opts.value as i64])?
                }
                other => {
                    return Err(
                        format!("client supports f64/i64 arrays, found {}", other.name()).into()
                    )
                }
            }
            println!("ok");
        }
        _ => usage(),
    }
    client.close(handle)?;
    Ok(())
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "serve" {
        if args.len() < 2 {
            usage();
        }
        return run_serve(&PathBuf::from(&args[1]), &parse_opts(&args[2..]));
    }
    if args[0] == "client" {
        return run_client(&args[1..]);
    }
    if args.len() < 3 {
        usage();
    }
    let cmd = args[0].as_str();
    let dir = PathBuf::from(&args[1]);
    let name = args[2].clone();
    let opts = parse_opts(&args[3..]);

    match cmd {
        "create" => {
            if opts.chunk.is_empty() || opts.bounds.is_empty() {
                usage();
            }
            let pfs = pfs_for(&dir, &opts, true)?;
            let layout = match opts.layout.as_str() {
                "rowmajor" => drx::InitialLayout::RowMajor,
                "shell" => drx::InitialLayout::ShellOrder,
                other => return Err(format!("unsupported layout {other}").into()),
            };
            match opts.dtype.as_str() {
                "f64" => {
                    DrxFile::<f64>::create_with_layout(
                        &pfs,
                        &name,
                        &opts.chunk,
                        &opts.bounds,
                        layout,
                    )?;
                }
                "i64" => {
                    DrxFile::<i64>::create_with_layout(
                        &pfs,
                        &name,
                        &opts.chunk,
                        &opts.bounds,
                        layout,
                    )?;
                }
                other => return Err(format!("unsupported dtype {other}").into()),
            }
            println!(
                "created {name}: bounds {}, chunks {}, dtype {}",
                dims(&opts.bounds),
                dims(&opts.chunk),
                opts.dtype
            );
        }
        "info" | "axial" | "extend" | "get" | "set" | "dump" => {
            let pfs = pfs_for(&dir, &opts, false)?;
            let meta = adopt(&pfs, &dir, &name)?;
            match meta.dtype() {
                DType::Float64 => dispatch::<f64>(cmd, &pfs, &name, &opts)?,
                DType::Int64 => dispatch::<i64>(cmd, &pfs, &name, &opts)?,
                other => {
                    return Err(
                        format!("drxtool supports f64/i64 files, found {}", other.name()).into()
                    )
                }
            }
        }
        _ => usage(),
    }
    Ok(())
}

fn dispatch<T>(
    cmd: &str,
    pfs: &Pfs,
    name: &str,
    opts: &Opts,
) -> Result<(), Box<dyn std::error::Error>>
where
    T: drx::Element + std::fmt::Display + std::str::FromStr,
    <T as std::str::FromStr>::Err: std::fmt::Display,
{
    let mut f: DrxFile<T> = DrxFile::open(pfs, name)?;
    match cmd {
        "info" => {
            let m = f.meta();
            println!("array      : {name}");
            println!("dtype      : {}", m.dtype().name());
            println!("rank       : {}", m.rank());
            println!("bounds     : {}", dims(m.element_bounds()));
            println!("chunk shape: {}", dims(m.chunking().shape()));
            println!("chunk grid : {}", dims(m.grid().bounds()));
            println!("chunks     : {}", m.total_chunks());
            println!("payload    : {} bytes", m.payload_bytes());
            println!("axial recs : {}", m.grid().record_count());
        }
        "axial" => {
            let m = f.meta();
            println!("axial vectors of {name} (N* start index; M* start address; C coefficients):");
            for dim in 0..m.rank() {
                for (start, addr, coeffs) in m.grid().axial(dim).display_records(m.rank()) {
                    println!("  D{dim}: N*={start:<4} M*={addr:<6} C={coeffs:?}");
                }
            }
        }
        "extend" => {
            if opts.by == 0 {
                usage();
            }
            f.extend(opts.dim, opts.by)?;
            println!("extended dim {} by {}; bounds now {}", opts.dim, opts.by, dims(f.bounds()));
        }
        "get" => {
            if opts.index.is_empty() {
                usage();
            }
            println!("{}", f.get(&opts.index)?);
        }
        "set" => {
            if opts.index.is_empty() {
                usage();
            }
            let v: T = format!("{}", opts.value).parse().map_err(|e| format!("bad value: {e}"))?;
            f.set(&opts.index, v)?;
            println!("ok");
        }
        "dump" => {
            let m = f.meta();
            let lo = if opts.lo.is_empty() { vec![0; m.rank()] } else { opts.lo.clone() };
            let hi = if opts.hi.is_empty() { m.element_bounds().to_vec() } else { opts.hi.clone() };
            let region = drx::Region::new(lo, hi)?;
            let data = f.read_region(&region, drx::Layout::C)?;
            let extents = region.extents();
            if m.rank() == 2 {
                // Grid rendering for matrices.
                let cols = extents[1];
                for (r, row) in data.chunks(cols).enumerate() {
                    let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                    println!("[{:>4}] {}", region.lo()[0] + r, cells.join(" "));
                }
            } else {
                for (pos, idx) in region.iter().enumerate() {
                    println!("{idx:?} = {}", data[pos]);
                }
            }
        }
        _ => usage(),
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("drxtool: {e}");
        exit(1);
    }
}
